//! The two evaluators of §3.8:
//!
//! * **standard semantics** — ordinary strict execution; every query is an
//!   immediate round trip (the original application), and Hibernate-style
//!   fetch strategies apply (eager prefetch at `orm_find`, collection
//!   proxies for lazy one-to-many associations).
//! * **extended lazy semantics** — the Sloth-compiled application: pure
//!   computation is delayed as thunks, heap operations and control flow
//!   force their targets, and query calls **register** with the query store
//!   at thunk-creation time so batches accumulate (§3.3–3.6).
//!
//! One interpreter implements both; a per-frame mode switch implements
//! selective compilation (§4.1). [`crate::opt`] pre-wraps deferrable
//! regions in [`Stmt::DeferBlock`], which the lazy evaluator turns into a
//! single block thunk (§4.2–4.3).

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;
use std::sync::Arc;

use sloth_net::{NetStats, SimEnv};
use sloth_orm::{sqlgen, AssocKind, FetchStrategy, Schema};
use sloth_sql::ResultSet;

use crate::analysis::{analyze, Analysis};
use crate::ast::*;
use crate::builtins::{builtin_kind, BuiltinKind};
use crate::opt::OptFlags;
use crate::runtime::{row_to_entity, rs_to_entities, Counters, DataLayer, RunError, RunResult};
use crate::simplify::simplify_program;
use crate::value::{BlockDriver, Deser, LazyState, LazyVal, Pending, V};

/// How to execute a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecStrategy {
    /// The original application: standard semantics, stock driver.
    Original,
    /// The Sloth-compiled application with the given optimizations.
    Sloth(OptFlags),
}

/// A program prepared for execution (compiled once, runnable many times —
/// including from many threads at once: `Prepared` is `Send + Sync`, so
/// the throughput harness shares one compiled page across its workers).
pub struct Prepared {
    program: Program,
    analysis: Arc<Analysis>,
    strategy: ExecStrategy,
}

impl Prepared {
    /// The post-compilation program (after simplify + optimize for Sloth).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The analysis results (persistence/purity labels).
    pub fn analysis(&self) -> &Analysis {
        &self.analysis
    }
}

/// Runs the Sloth compilation pipeline. Both strategies execute the
/// simplified (§3.1) program — the paper's baseline is the same source
/// compiled by the stock compiler, so op-count differences must come from
/// lazy evaluation itself, not from the three-address lowering.
pub fn prepare(program: &Program, strategy: ExecStrategy) -> Prepared {
    prepare_with_schema(program, strategy, None)
}

/// [`prepare`] with ORM schema metadata available at compile time:
/// branch deferral across writes can then bound `orm_*` write calls by
/// their backing tables too (raw `exec`/`query` SQL is statically
/// traceable either way).
pub fn prepare_with_schema(
    program: &Program,
    strategy: ExecStrategy,
    schema: Option<&Schema>,
) -> Prepared {
    let simplified = simplify_program(program);
    let analysis = analyze(&simplified);
    match strategy {
        ExecStrategy::Original => Prepared {
            program: simplified,
            analysis: Arc::new(analysis),
            strategy,
        },
        ExecStrategy::Sloth(flags) => {
            let optimized = crate::opt::optimize_with_schema(&simplified, &analysis, flags, schema);
            Prepared {
                program: optimized,
                analysis: Arc::new(analysis),
                strategy,
            }
        }
    }
}

impl Prepared {
    /// Runs `main(args…)` against the deployment.
    pub fn run(
        &self,
        env: &SimEnv,
        schema: Arc<Schema>,
        args: Vec<V>,
    ) -> Result<RunResult, RunError> {
        let data = match self.strategy {
            ExecStrategy::Original => DataLayer::immediate(env.clone(), schema),
            ExecStrategy::Sloth(_) => DataLayer::deferred(env.clone(), schema),
        };
        self.run_with(data, args)
    }

    /// Runs `main(args…)` over an explicit data layer — how the serving
    /// harness runs one page per session against a shared deployment
    /// (e.g. [`DataLayer::dispatched`] for the coalescing path).
    ///
    /// The data layer's mode must match the strategy: `Original` needs an
    /// immediate layer, `Sloth` a deferred one.
    pub fn run_with(&self, data: DataLayer, args: Vec<V>) -> Result<RunResult, RunError> {
        let env = data.env.clone();
        let before = env.stats();
        let (lazy, flags) = match self.strategy {
            ExecStrategy::Original => (false, OptFlags::all()),
            ExecStrategy::Sloth(flags) => (true, flags),
        };
        if lazy != data.store.is_some() {
            return Err(RunError::new(
                "data layer mode does not match execution strategy",
            ));
        }
        let mut interp = Interp {
            fn_index: self
                .program
                .functions
                .iter()
                .map(|f| (f.name.as_str(), f))
                .collect(),
            analysis: Arc::clone(&self.analysis),
            data,
            flags,
            counters: Counters::default(),
            output: Vec::new(),
            out_buffer: Vec::new(),
            effect_blocks: Vec::new(),
            depth: 0,
        };
        let returned_v = interp.call_function("main", args, lazy)?;
        // End of request: deferred *effectful* blocks (write-containing
        // branches kept lazy by BD-across-writes) run first — their
        // writes register now and may still share the output flush —
        // then the buffering writer flushes (forcing in order), then the
        // framework renders the returned value if any.
        interp.run_effect_blocks()?;
        interp.flush_buffer()?;
        let returned = match returned_v {
            V::Null => None,
            v => Some(interp.display(&v)?),
        };
        // Any write still deferred ships now, in one write-only round
        // trip — dead reads stay dead (never-demanded queries never
        // execute), but writes always apply before the request ends.
        if let Some(store) = &interp.data.store {
            store.flush_deferred_writes().map_err(RunError::from)?;
        }
        env.charge_app(interp.counters.app_ns());
        let after = env.stats();
        let store_stats = interp.data.store.as_ref().map(|s| s.stats());
        Ok(RunResult {
            output: interp.output,
            returned,
            counters: interp.counters,
            net: NetStats {
                round_trips: after.round_trips.saturating_sub(before.round_trips),
                queries: after.queries.saturating_sub(before.queries),
                network_ns: after.network_ns.saturating_sub(before.network_ns),
                db_ns: after.db_ns.saturating_sub(before.db_ns),
                app_ns: after.app_ns.saturating_sub(before.app_ns),
                max_batch: after.max_batch,
                bytes: after.bytes.saturating_sub(before.bytes),
                fused_queries: after.fused_queries.saturating_sub(before.fused_queries),
                fused_groups: after.fused_groups.saturating_sub(before.fused_groups),
                snapshot_batches: after
                    .snapshot_batches
                    .saturating_sub(before.snapshot_batches),
            },
            store: store_stats,
        })
    }
}

/// Convenience: parse, prepare and run a source string.
pub fn run_source(
    src: &str,
    env: &SimEnv,
    schema: Arc<Schema>,
    strategy: ExecStrategy,
    args: Vec<V>,
) -> Result<RunResult, RunError> {
    let program = crate::parser::parse_program(src)?;
    prepare(&program, strategy).run(env, schema, args)
}

enum Flow {
    Normal,
    Break,
    Continue,
    Return(V),
}

type Env = HashMap<String, V>;

struct Interp<'p> {
    fn_index: HashMap<&'p str, &'p Function>,
    analysis: Arc<Analysis>,
    data: DataLayer,
    flags: OptFlags,
    counters: Counters,
    output: Vec<String>,
    out_buffer: Vec<V>,
    /// Thunk handles of deferred **effectful** blocks (write-containing
    /// branches deferred by BD-across-writes), in creation order. Forced
    /// at end of request if nothing demanded their outputs earlier — a
    /// deferred branch's writes must always execute.
    effect_blocks: Vec<V>,
    depth: usize,
}

const MAX_DEPTH: usize = 200;
const MAX_LOOP_ITERS: u64 = 50_000_000;

impl<'p> Interp<'p> {
    fn op(&mut self, lazy: bool) {
        if lazy {
            self.counters.lazy_ops += 1;
        } else {
            self.counters.std_ops += 1;
        }
    }

    fn alloc_thunk(&mut self, p: Pending) -> V {
        self.counters.thunk_allocs += 1;
        V::Thunk(LazyVal::pending(p))
    }

    // ------------------------------------------------------------------
    // Function calls
    // ------------------------------------------------------------------

    fn call_function(&mut self, name: &str, args: Vec<V>, lazy: bool) -> Result<V, RunError> {
        let Some(f) = self.fn_index.get(name).copied() else {
            return Err(RunError::new(format!("unknown function {name}")));
        };
        if f.params.len() != args.len() {
            return Err(RunError::new(format!(
                "{name} expects {} args, got {}",
                f.params.len(),
                args.len()
            )));
        }
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            self.depth -= 1;
            return Err(RunError::new("recursion limit exceeded"));
        }
        // Selective compilation: under a Sloth run, non-persistent
        // functions execute with standard semantics (their args forced at
        // the boundary, like the paper's generated dummy methods).
        let run_lazy = lazy && (!self.flags.selective || self.analysis.is_persistent(name));
        let args = if lazy && !run_lazy {
            args.into_iter()
                .map(|a| self.force(a))
                .collect::<Result<Vec<_>, _>>()?
        } else {
            args
        };
        let mut env: Env = f.params.iter().cloned().zip(args).collect();
        let flow = self.exec_block(&f.body, &mut env, run_lazy);
        self.depth -= 1;
        match flow? {
            Flow::Return(v) => Ok(v),
            _ => Ok(V::Null),
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn exec_block(&mut self, stmts: &[Stmt], env: &mut Env, lazy: bool) -> Result<Flow, RunError> {
        for s in stmts {
            match self.exec_stmt(s, env, lazy)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, s: &Stmt, env: &mut Env, lazy: bool) -> Result<Flow, RunError> {
        self.op(lazy);
        match s {
            Stmt::Let(name, e) => {
                let v = self.eval(e, env, lazy)?;
                env.insert(name.clone(), v);
                Ok(Flow::Normal)
            }
            Stmt::Assign(LValue::Var(name), e) => {
                let v = self.eval(e, env, lazy)?;
                env.insert(name.clone(), v);
                Ok(Flow::Normal)
            }
            Stmt::Assign(LValue::Field(base, field), e) => {
                // Heap writes are never deferred; the target is forced, the
                // stored value may stay a thunk (§3.5).
                let obj = self.eval(base, env, lazy)?;
                let obj = self.force(obj)?;
                let v = self.eval(e, env, lazy)?;
                match obj {
                    V::Obj(o) => {
                        o.borrow_mut().insert(field.clone(), v);
                        Ok(Flow::Normal)
                    }
                    other => Err(RunError::new(format!(
                        "field write on non-object {other:?}"
                    ))),
                }
            }
            Stmt::Assign(LValue::Index(base, idx), e) => {
                let list = self.eval(base, env, lazy)?;
                let list = self.force(list)?;
                let i = self.eval(idx, env, lazy)?;
                let i = self.force(i)?;
                let v = self.eval(e, env, lazy)?;
                match (list, i) {
                    (V::List(xs), V::Int(i)) => {
                        let mut xs = xs.borrow_mut();
                        let idx = i as usize;
                        if idx >= xs.len() {
                            return Err(RunError::new(format!(
                                "index {i} out of bounds (len {})",
                                xs.len()
                            )));
                        }
                        xs[idx] = v;
                        Ok(Flow::Normal)
                    }
                    (l, i) => Err(RunError::new(format!(
                        "bad index write target {l:?}[{i:?}]"
                    ))),
                }
            }
            Stmt::If(cond, then, els) => {
                let c = self.eval(cond, env, lazy)?;
                let c = self.force(c)?;
                if c.truthy() {
                    self.exec_block(then, env, lazy)
                } else {
                    self.exec_block(els, env, lazy)
                }
            }
            Stmt::While(cond, body) => {
                let mut iters = 0u64;
                loop {
                    iters += 1;
                    if iters > MAX_LOOP_ITERS {
                        return Err(RunError::new("loop iteration limit exceeded"));
                    }
                    let c = self.eval(cond, env, lazy)?;
                    let c = self.force(c)?;
                    if !c.truthy() {
                        return Ok(Flow::Normal);
                    }
                    match self.exec_block(body, env, lazy)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => return Ok(Flow::Normal),
                        r @ Flow::Return(_) => return Ok(r),
                    }
                }
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e, env, lazy)?,
                    None => V::Null,
                };
                Ok(Flow::Return(v))
            }
            Stmt::ExprStmt(e) => {
                self.eval(e, env, lazy)?;
                Ok(Flow::Normal)
            }
            Stmt::DeferBlock {
                body,
                outputs,
                effectful,
            } => {
                if !lazy {
                    // Standard semantics: transparent.
                    return self.exec_block(body, env, lazy);
                }
                // One thunk for the whole region (§4.2/4.3): capture the
                // referenced variables by value, produce projection thunks
                // for the outputs.
                let mut referenced = HashMap::new();
                crate::opt::count_occurrences_pub(body, &mut referenced);
                let captured: Vec<(String, V)> = referenced
                    .keys()
                    .filter_map(|k| env.get(k).map(|v| (k.clone(), v.clone())))
                    .collect();
                let driver = Rc::new(BlockDriver {
                    env: captured,
                    body: Rc::new(body.clone()),
                    outputs: outputs.clone(),
                    results: RefCell::new(None),
                });
                self.counters.thunk_allocs += 1;
                for out in outputs {
                    let proj = self.alloc_thunk(Pending::Block {
                        driver: Rc::clone(&driver),
                        output: Some(out.clone()),
                    });
                    env.insert(out.clone(), proj);
                }
                if *effectful {
                    // The block's writes must run even if no output is
                    // ever demanded: keep a handle for end-of-request.
                    let handle = self.alloc_thunk(Pending::Block {
                        driver: Rc::clone(&driver),
                        output: None,
                    });
                    self.effect_blocks.push(handle);
                }
                Ok(Flow::Normal)
            }
        }
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn eval(&mut self, e: &Expr, env: &Env, lazy: bool) -> Result<V, RunError> {
        self.op(lazy);
        let v = match e {
            Expr::Lit(l) => lit_to_v(l),
            Expr::Var(name) => env
                .get(name)
                .cloned()
                .ok_or_else(|| RunError::new(format!("unbound variable {name}")))?,
            Expr::Field(base, field) => {
                // Field reads execute at evaluation time, forcing the
                // target; the field's stored value may be a thunk (§3.6).
                let obj = self.eval(base, env, lazy)?;
                let obj = self.force(obj)?;
                self.read_field(&obj, field)?
            }
            Expr::Index(base, idx) => {
                let b = self.eval(base, env, lazy)?;
                let b = self.force(b)?;
                let i = self.eval(idx, env, lazy)?;
                let i = self.force(i)?;
                self.read_index(&b, &i)?
            }
            Expr::Binary(op, a, b) => {
                if lazy {
                    // Short-circuit operators force their left side (control
                    // dependence); everything else becomes a thunk.
                    match op {
                        BinOp::And | BinOp::Or => {
                            let l = self.eval(a, env, lazy)?;
                            let l = self.force(l)?;
                            let take_right = match op {
                                BinOp::And => l.truthy(),
                                _ => !l.truthy(),
                            };
                            if take_right {
                                let r = self.eval(b, env, lazy)?;
                                let r = self.force(r)?;
                                V::Bool(r.truthy())
                            } else {
                                V::Bool(matches!(op, BinOp::Or))
                            }
                        }
                        _ => {
                            let va = self.eval(a, env, lazy)?;
                            let vb = self.eval(b, env, lazy)?;
                            let expr = Rc::new(Expr::Binary(
                                *op,
                                Box::new(Expr::Var("__l".into())),
                                Box::new(Expr::Var("__r".into())),
                            ));
                            self.alloc_thunk(Pending::Expr {
                                env: vec![("__l".into(), va), ("__r".into(), vb)],
                                expr,
                            })
                        }
                    }
                } else {
                    let va = self.eval(a, env, lazy)?;
                    let vb = self.eval(b, env, lazy)?;
                    self.binop(*op, va, vb)?
                }
            }
            Expr::Unary(op, a) => {
                let va = self.eval(a, env, lazy)?;
                if lazy {
                    let expr = Rc::new(Expr::Unary(*op, Box::new(Expr::Var("__x".into()))));
                    self.alloc_thunk(Pending::Expr {
                        env: vec![("__x".into(), va)],
                        expr,
                    })
                } else {
                    self.unop(*op, va)?
                }
            }
            Expr::Call(name, args) => return self.eval_call(name, args, env, lazy),
            Expr::NewObject(fields) => {
                // Allocation is a heap operation: eager in both modes.
                let mut map = BTreeMap::new();
                for (f, e) in fields {
                    map.insert(f.clone(), self.eval(e, env, lazy)?);
                }
                V::Obj(Rc::new(RefCell::new(map)))
            }
            Expr::NewList(items) => {
                let mut xs = Vec::with_capacity(items.len());
                for e in items {
                    xs.push(self.eval(e, env, lazy)?);
                }
                V::list(xs)
            }
        };
        if lazy {
            Ok(v)
        } else {
            self.force(v)
        }
    }

    fn eval_call(
        &mut self,
        name: &str,
        args: &[Expr],
        env: &Env,
        lazy: bool,
    ) -> Result<V, RunError> {
        match builtin_kind(name) {
            Some(BuiltinKind::Pure) => {
                let vals = self.eval_args(args, env, lazy)?;
                if lazy {
                    Ok(self.alloc_thunk(Pending::Call {
                        func: name.to_string(),
                        args: vals,
                    }))
                } else {
                    self.pure_builtin(name, vals)
                }
            }
            Some(BuiltinKind::EagerRead) => {
                let vals = self.eval_args(args, env, lazy)?;
                self.eager_read_builtin(name, vals, lazy)
            }
            Some(BuiltinKind::HeapWrite) => {
                let vals = self.eval_args(args, env, lazy)?;
                self.heap_write_builtin(name, vals)
            }
            Some(BuiltinKind::External) => {
                let vals = self.eval_args(args, env, lazy)?;
                self.external_builtin(name, vals, lazy)
            }
            Some(BuiltinKind::Query) => {
                let vals = self.eval_args(args, env, lazy)?;
                self.query_builtin(name, vals, lazy)
            }
            Some(BuiltinKind::WriteQuery) => {
                let vals = self.eval_args(args, env, lazy)?;
                self.write_query_builtin(name, vals)
            }
            None => {
                let vals = self.eval_args(args, env, lazy)?;
                if lazy && self.analysis.is_pure_fn(name) {
                    // Internal pure call: defer the whole call (§3.4).
                    Ok(self.alloc_thunk(Pending::Call {
                        func: name.to_string(),
                        args: vals,
                    }))
                } else {
                    self.call_function(name, vals, lazy)
                }
            }
        }
    }

    fn eval_args(&mut self, args: &[Expr], env: &Env, lazy: bool) -> Result<Vec<V>, RunError> {
        args.iter().map(|a| self.eval(a, env, lazy)).collect()
    }

    // ------------------------------------------------------------------
    // Forcing
    // ------------------------------------------------------------------

    fn force(&mut self, v: V) -> Result<V, RunError> {
        let mut cur = v;
        loop {
            let V::Thunk(cell) = cur else { return Ok(cur) };
            let state = std::mem::replace(&mut *cell.0.borrow_mut(), LazyState::InFlight);
            match state {
                LazyState::Done(v) => {
                    *cell.0.borrow_mut() = LazyState::Done(v.clone());
                    cur = v;
                }
                LazyState::InFlight => {
                    return Err(RunError::new("cyclic thunk dependency"));
                }
                LazyState::Pending(p) => {
                    self.counters.forces += 1;
                    let v = self.eval_pending(p)?;
                    let v = self.force(v)?;
                    *cell.0.borrow_mut() = LazyState::Done(v.clone());
                    cur = v;
                }
            }
        }
    }

    fn eval_pending(&mut self, p: Pending) -> Result<V, RunError> {
        match p {
            Pending::Expr { env, expr } => {
                // Forcing means computing *now*: evaluate strictly (operand
                // thunks force transparently), otherwise the delayed op
                // would just re-defer itself.
                let frame: Env = env.into_iter().collect();
                self.eval(&expr, &frame, false)
            }
            Pending::Query { id, deser } => {
                let rs = self.data.fetch(id)?;
                Ok(deserialize(&deser, rs))
            }
            Pending::Call { func, args } => {
                if builtin_kind(&func).is_some() {
                    self.pure_builtin(&func, args)
                } else {
                    self.call_function(&func, args, true)
                }
            }
            Pending::Block { driver, output } => {
                if driver.results.borrow().is_none() {
                    // Forcing the block runs its statements *now*, strictly
                    // — that is the saving of §4.3: one thunk for the whole
                    // region instead of one per statement.
                    let mut frame: Env = driver.env.iter().cloned().collect();
                    self.exec_block(&driver.body, &mut frame, false)?;
                    let outs: BTreeMap<String, V> = driver
                        .outputs
                        .iter()
                        .map(|o| (o.clone(), frame.get(o).cloned().unwrap_or(V::Null)))
                        .collect();
                    *driver.results.borrow_mut() = Some(outs);
                }
                match output {
                    None => Ok(V::Null),
                    Some(name) => Ok(driver
                        .results
                        .borrow()
                        .as_ref()
                        .and_then(|m| m.get(&name).cloned())
                        .unwrap_or(V::Null)),
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Heap reads
    // ------------------------------------------------------------------

    fn read_field(&mut self, obj: &V, field: &str) -> Result<V, RunError> {
        match obj {
            V::Obj(o) => {
                if o.borrow().contains_key("__proxy_sql") && !field.starts_with("__") {
                    // Reading through a collection proxy materializes it.
                    let items = self.materialize_proxy(o)?;
                    return self.read_field(&items, field);
                }
                Ok(o.borrow().get(field).cloned().unwrap_or(V::Null))
            }
            V::Null => Err(RunError::new(format!("field {field} read on null"))),
            other => Err(RunError::new(format!("field {field} read on {other:?}"))),
        }
    }

    fn read_index(&mut self, base: &V, idx: &V) -> Result<V, RunError> {
        match (base, idx) {
            (V::List(xs), V::Int(i)) => xs
                .borrow()
                .get(*i as usize)
                .cloned()
                .ok_or_else(|| RunError::new(format!("index {i} out of bounds"))),
            (V::Rs(rs), V::Int(i)) => {
                let i = *i as usize;
                if i >= rs.len() {
                    return Err(RunError::new(format!("row {i} out of bounds")));
                }
                Ok(row_to_plain_obj(rs, i))
            }
            (V::Obj(o), V::Int(_)) if o.borrow().contains_key("__proxy_sql") => {
                let items = self.materialize_proxy(o)?;
                self.read_index(&items, idx)
            }
            (b, i) => Err(RunError::new(format!("bad index read {b:?}[{i:?}]"))),
        }
    }

    // ------------------------------------------------------------------
    // Scalar operators
    // ------------------------------------------------------------------

    fn binop(&mut self, op: BinOp, a: V, b: V) -> Result<V, RunError> {
        let a = self.force(a)?;
        let b = self.force(b)?;
        use BinOp::*;
        Ok(match op {
            Add => match (&a, &b) {
                (V::Str(_), _) | (_, V::Str(_)) => {
                    let sa = self.display(&a)?;
                    let sb = self.display(&b)?;
                    V::str(format!("{sa}{sb}"))
                }
                (V::Int(x), V::Int(y)) => V::Int(x.wrapping_add(*y)),
                _ => V::Float(num(&a)? + num(&b)?),
            },
            Sub => arith(&a, &b, i64::wrapping_sub, |x, y| x - y)?,
            Mul => arith(&a, &b, i64::wrapping_mul, |x, y| x * y)?,
            Div => match (&a, &b) {
                (V::Int(_), V::Int(0)) => return Err(RunError::new("division by zero")),
                (V::Int(x), V::Int(y)) => V::Int(x / y),
                _ => {
                    let d = num(&b)?;
                    if d == 0.0 {
                        return Err(RunError::new("division by zero"));
                    }
                    V::Float(num(&a)? / d)
                }
            },
            Mod => match (&a, &b) {
                (V::Int(_), V::Int(0)) => return Err(RunError::new("modulo by zero")),
                (V::Int(x), V::Int(y)) => V::Int(x % y),
                _ => return Err(RunError::new("modulo needs integers")),
            },
            Eq => V::Bool(values_eq(&a, &b)),
            Ne => V::Bool(!values_eq(&a, &b)),
            Lt | Le | Gt | Ge => {
                let ord = compare(&a, &b)?;
                V::Bool(match op {
                    Lt => ord.is_lt(),
                    Le => ord.is_le(),
                    Gt => ord.is_gt(),
                    _ => ord.is_ge(),
                })
            }
            And => V::Bool(a.truthy() && b.truthy()),
            Or => V::Bool(a.truthy() || b.truthy()),
        })
    }

    fn unop(&mut self, op: UnOp, a: V) -> Result<V, RunError> {
        let a = self.force(a)?;
        match op {
            UnOp::Not => Ok(V::Bool(!a.truthy())),
            UnOp::Neg => match a {
                V::Int(i) => Ok(V::Int(-i)),
                V::Float(f) => Ok(V::Float(-f)),
                other => Err(RunError::new(format!("cannot negate {other:?}"))),
            },
        }
    }

    // ------------------------------------------------------------------
    // Builtins
    // ------------------------------------------------------------------

    fn pure_builtin(&mut self, name: &str, args: Vec<V>) -> Result<V, RunError> {
        let mut forced = Vec::with_capacity(args.len());
        for a in args {
            forced.push(self.force(a)?);
        }
        let arg = |i: usize| -> &V { forced.get(i).unwrap_or(&V::Null) };
        Ok(match name {
            "str" => V::str(self.display(arg(0))?),
            "upper" => V::str(self.display(arg(0))?.to_uppercase()),
            "lower" => V::str(self.display(arg(0))?.to_lowercase()),
            "concat" => {
                let mut s = String::new();
                for a in &forced {
                    s.push_str(&self.display(a)?);
                }
                V::str(s)
            }
            "contains" => {
                let h = self.display(arg(0))?;
                let n = self.display(arg(1))?;
                V::Bool(h.contains(&n))
            }
            "starts_with" => {
                let h = self.display(arg(0))?;
                let n = self.display(arg(1))?;
                V::Bool(h.starts_with(&n))
            }
            "substr" => {
                let s = self.display(arg(0))?;
                let start = int(arg(1))? as usize;
                let len = int(arg(2))? as usize;
                V::str(s.chars().skip(start).take(len).collect::<String>())
            }
            "len_str" => V::Int(self.display(arg(0))?.chars().count() as i64),
            "abs" => match arg(0) {
                V::Int(i) => V::Int(i.abs()),
                V::Float(f) => V::Float(f.abs()),
                other => return Err(RunError::new(format!("abs of {other:?}"))),
            },
            "min" => {
                if compare(arg(0), arg(1))?.is_le() {
                    arg(0).clone()
                } else {
                    arg(1).clone()
                }
            }
            "max" => {
                if compare(arg(0), arg(1))?.is_ge() {
                    arg(0).clone()
                } else {
                    arg(1).clone()
                }
            }
            "is_null" => V::Bool(matches!(arg(0), V::Null)),
            "not_null" => V::Bool(!matches!(arg(0), V::Null)),
            "to_int" => match arg(0) {
                V::Int(i) => V::Int(*i),
                V::Float(f) => V::Int(*f as i64),
                V::Str(s) => V::Int(
                    s.parse::<i64>()
                        .map_err(|_| RunError::new(format!("to_int on {s:?}")))?,
                ),
                V::Bool(b) => V::Int(*b as i64),
                other => return Err(RunError::new(format!("to_int on {other:?}"))),
            },
            other => return Err(RunError::new(format!("unknown pure builtin {other}"))),
        })
    }

    fn eager_read_builtin(
        &mut self,
        name: &str,
        mut args: Vec<V>,
        lazy: bool,
    ) -> Result<V, RunError> {
        let _ = lazy;
        let recv = self.force(args.remove(0))?;
        match name {
            "len" | "nrows" => match &recv {
                V::List(xs) => Ok(V::Int(xs.borrow().len() as i64)),
                V::Rs(rs) => Ok(V::Int(rs.len() as i64)),
                V::Obj(o) if o.borrow().contains_key("__proxy_sql") => {
                    let items = self.materialize_proxy(o)?;
                    self.eager_read_builtin("len", vec![items], lazy)
                }
                V::Null => Ok(V::Int(0)),
                other => Err(RunError::new(format!("len of {other:?}"))),
            },
            "at" => {
                let i = self.force(args.remove(0))?;
                self.read_index(&recv, &i)
            }
            "first" => match &recv {
                V::List(xs) => Ok(xs.borrow().first().cloned().unwrap_or(V::Null)),
                V::Rs(rs) => {
                    if rs.is_empty() {
                        Ok(V::Null)
                    } else {
                        Ok(row_to_plain_obj(rs, 0))
                    }
                }
                V::Obj(o) if o.borrow().contains_key("__proxy_sql") => {
                    let items = self.materialize_proxy(o)?;
                    self.eager_read_builtin("first", vec![items], lazy)
                }
                V::Null => Ok(V::Null),
                other => Err(RunError::new(format!("first of {other:?}"))),
            },
            "cell" => {
                let i = self.force(args.remove(0))?;
                let col = self.force(args.remove(0))?;
                match (&recv, &i, &col) {
                    (V::Rs(rs), V::Int(i), V::Str(c)) => rs
                        .get(*i as usize, c)
                        .map(V::from_sql)
                        .ok_or_else(|| RunError::new(format!("no cell [{i}].{c}"))),
                    _ => Err(RunError::new("cell(rs, row, col) expected")),
                }
            }
            "obj_get" => {
                let field = self.force(args.remove(0))?;
                let field = self.display(&field)?;
                self.read_field(&recv, &field)
            }
            "has_field" => {
                let field = self.force(args.remove(0))?;
                let field = self.display(&field)?;
                match recv {
                    V::Obj(o) => Ok(V::Bool(o.borrow().contains_key(&field))),
                    _ => Ok(V::Bool(false)),
                }
            }
            other => Err(RunError::new(format!("unknown read builtin {other}"))),
        }
    }

    fn heap_write_builtin(&mut self, name: &str, mut args: Vec<V>) -> Result<V, RunError> {
        let recv = self.force(args.remove(0))?;
        match name {
            "push" => match recv {
                V::List(xs) => {
                    xs.borrow_mut().push(args.remove(0));
                    Ok(V::Null)
                }
                other => Err(RunError::new(format!("push to {other:?}"))),
            },
            "obj_put" => {
                let field = self.force(args.remove(0))?;
                let field = self.display(&field)?;
                match recv {
                    V::Obj(o) => {
                        o.borrow_mut().insert(field, args.remove(0));
                        Ok(V::Null)
                    }
                    other => Err(RunError::new(format!("obj_put on {other:?}"))),
                }
            }
            "clear" => match recv {
                V::List(xs) => {
                    xs.borrow_mut().clear();
                    Ok(V::Null)
                }
                other => Err(RunError::new(format!("clear of {other:?}"))),
            },
            other => Err(RunError::new(format!("unknown write builtin {other}"))),
        }
    }

    fn external_builtin(&mut self, name: &str, args: Vec<V>, lazy: bool) -> Result<V, RunError> {
        let _ = lazy;
        match name {
            "print" | "write" | "render" | "log" => {
                let v = args.into_iter().next().unwrap_or(V::Null);
                // The buffering writer is request-global (§5): output from
                // standard-compiled helper methods must interleave with
                // lazily-produced output in program order.
                let sloth_run = self.data.store.is_some();
                if sloth_run && self.flags.buffered_writer {
                    // §5 JSP extension: thunks are written to the buffer and
                    // forced only when the page flushes.
                    self.out_buffer.push(v);
                } else {
                    let s = self.display(&v)?;
                    self.output.push(s);
                }
                Ok(V::Null)
            }
            other => Err(RunError::new(format!("unknown external builtin {other}"))),
        }
    }

    /// Forces every pending effectful block, in creation order. Forcing
    /// is memoized, so blocks whose outputs were already demanded are
    /// no-ops here.
    fn run_effect_blocks(&mut self) -> Result<(), RunError> {
        while !self.effect_blocks.is_empty() {
            let blocks = std::mem::take(&mut self.effect_blocks);
            for v in blocks {
                self.force(v)?;
            }
        }
        Ok(())
    }

    fn flush_buffer(&mut self) -> Result<(), RunError> {
        let buffered = std::mem::take(&mut self.out_buffer);
        for v in buffered {
            let s = self.display(&v)?;
            self.output.push(s);
        }
        Ok(())
    }

    fn query_builtin(&mut self, name: &str, mut args: Vec<V>, lazy: bool) -> Result<V, RunError> {
        match name {
            "query" => {
                let sql = self.force(args.remove(0))?;
                let sql = self.display(&sql)?;
                if lazy {
                    self.register_thunk(&sql, Deser::Raw)
                } else {
                    Ok(V::Rs(Rc::new(self.data.read_now(&sql)?)))
                }
            }
            "orm_find" => {
                let entity = self.string_arg(args.remove(0))?;
                let id = self.force(args.remove(0))?;
                let def = self.entity_def(&entity)?;
                let sql = sqlgen::select_by_pk(&def, &id.to_sql());
                if lazy {
                    self.register_thunk(&sql, Deser::EntityOpt(entity))
                } else {
                    let rs = self.data.read_now(&sql)?;
                    if rs.is_empty() {
                        return Ok(V::Null);
                    }
                    let e = row_to_entity(&entity, &rs, 0);
                    self.std_prefetch_eager(&entity, &e)?;
                    Ok(e)
                }
            }
            "orm_assoc" => {
                let owner = self.force(args.remove(0))?;
                let assoc = self.string_arg(args.remove(0))?;
                self.orm_assoc(owner, &assoc, lazy)
            }
            "orm_find_where" => {
                let entity = self.string_arg(args.remove(0))?;
                let col = self.string_arg(args.remove(0))?;
                let v = self.force(args.remove(0))?;
                let def = self.entity_def(&entity)?;
                let sql = sqlgen::select_where_eq(&def, &col, &v.to_sql());
                if lazy {
                    self.register_thunk(&sql, Deser::EntityList(entity))
                } else {
                    let rs = self.data.read_now(&sql)?;
                    Ok(rs_to_entities(&entity, &rs))
                }
            }
            "orm_find_all" => {
                let entity = self.string_arg(args.remove(0))?;
                let def = self.entity_def(&entity)?;
                let sql = sqlgen::select_all(&def);
                if lazy {
                    self.register_thunk(&sql, Deser::EntityList(entity))
                } else {
                    let rs = self.data.read_now(&sql)?;
                    Ok(rs_to_entities(&entity, &rs))
                }
            }
            "orm_count_where" => {
                let entity = self.string_arg(args.remove(0))?;
                let col = self.string_arg(args.remove(0))?;
                let v = self.force(args.remove(0))?;
                let def = self.entity_def(&entity)?;
                let sql = sqlgen::count_where_eq(&def, &col, &v.to_sql());
                if lazy {
                    self.register_thunk(&sql, Deser::Scalar)
                } else {
                    let rs = self.data.read_now(&sql)?;
                    Ok(rs
                        .rows
                        .first()
                        .and_then(|r| r.first())
                        .map(V::from_sql)
                        .unwrap_or(V::Null))
                }
            }
            other => Err(RunError::new(format!("unknown query builtin {other}"))),
        }
    }

    fn write_query_builtin(&mut self, name: &str, mut args: Vec<V>) -> Result<V, RunError> {
        let sql = match name {
            "exec" => {
                let s = self.force(args.remove(0))?;
                self.display(&s)?
            }
            "commit" => "COMMIT".to_string(),
            "begin" => "BEGIN".to_string(),
            "rollback" => "ROLLBACK".to_string(),
            "orm_save" => {
                let entity = self.string_arg(args.remove(0))?;
                let vals = self.force(args.remove(0))?;
                let def = self.entity_def(&entity)?;
                let V::List(xs) = vals else {
                    return Err(RunError::new("orm_save expects a list of values"));
                };
                let mut sql_vals = Vec::new();
                for v in xs.borrow().iter() {
                    let f = self.force(v.clone())?;
                    sql_vals.push(f.to_sql());
                }
                sqlgen::insert_row(&def, &sql_vals)
            }
            "orm_update" => {
                let entity = self.string_arg(args.remove(0))?;
                let id = self.force(args.remove(0))?;
                let col = self.string_arg(args.remove(0))?;
                let v = self.force(args.remove(0))?;
                let def = self.entity_def(&entity)?;
                sqlgen::update_field(&def, &id.to_sql(), &col, &v.to_sql())
            }
            "orm_delete" => {
                let entity = self.string_arg(args.remove(0))?;
                let id = self.force(args.remove(0))?;
                let def = self.entity_def(&entity)?;
                sqlgen::delete_by_pk(&def, &id.to_sql())
            }
            other => return Err(RunError::new(format!("unknown write builtin {other}"))),
        };
        // In Sloth mode a write registers with the store (§3.3): a
        // conflicting write (or barrier) drains the batch on the spot,
        // while a provably-silent write **defers** (§3.5–3.6, selective
        // laziness) — its empty result is not demanded, so consecutive
        // disjoint writes cost no round trips until something drains
        // them. In original mode writes execute directly.
        if self.data.store.is_some() {
            let reg = self.data.register_write(&sql)?;
            self.counters.queries_registered += 1;
            if !reg.deferred {
                self.data.fetch(reg.id)?;
            }
        } else {
            self.data.read_now(&sql)?;
        }
        Ok(V::Null)
    }

    fn register_thunk(&mut self, sql: &str, deser: Deser) -> Result<V, RunError> {
        let id = self.data.register(sql)?;
        self.counters.queries_registered += 1;
        Ok(self.alloc_thunk(Pending::Query { id, deser }))
    }

    /// Original-mode eager prefetch at `orm_find` (§1: the "eager" strategy
    /// fetches associated collections whether used or not).
    fn std_prefetch_eager(&mut self, entity: &str, e: &V) -> Result<(), RunError> {
        let def = self.entity_def(entity)?;
        let eager: Vec<String> = def
            .assocs
            .iter()
            .filter(|a| a.strategy == FetchStrategy::Eager)
            .map(|a| a.name.clone())
            .collect();
        for name in eager {
            let items = self.fetch_assoc_now(e, entity, &name)?;
            if let V::Obj(o) = e {
                o.borrow_mut().insert(format!("__assoc_{name}"), items);
            }
        }
        Ok(())
    }

    fn orm_assoc(&mut self, owner: V, assoc: &str, lazy: bool) -> Result<V, RunError> {
        let V::Obj(o) = &owner else {
            return Err(RunError::new(format!("orm_assoc on non-entity {owner:?}")));
        };
        let entity = {
            let b = o.borrow();
            match b.get("__entity") {
                Some(V::Str(s)) => s.to_string(),
                _ => return Err(RunError::new("orm_assoc on non-entity object")),
            }
        };
        let memo_key = format!("__assoc_{assoc}");
        if let Some(cached) = o.borrow().get(&memo_key).cloned() {
            return Ok(cached);
        }
        let def = self.entity_def(&entity)?;
        let a = def
            .assoc(assoc)
            .ok_or_else(|| RunError::new(format!("no assoc {assoc} on {entity}")))?
            .clone();
        let key = match &a.kind {
            AssocKind::OneToMany { .. } => self.read_field(&owner, &def.pk)?,
            AssocKind::ManyToOne { fk_column } => self.read_field(&owner, fk_column)?,
        };
        let key = self.force(key)?;
        let (sql, target, many) = self.data.assoc_sql(&entity, assoc, &key.to_sql())?;
        let result = if lazy {
            // Sloth: register now (the owner is already materialized),
            // defer deserialization (§3.3).
            let deser = if many {
                Deser::EntityList(target)
            } else {
                Deser::EntityOpt(target)
            };
            self.register_thunk(&sql, deser)?
        } else if many && a.strategy == FetchStrategy::Lazy {
            // Hibernate collection proxy: no query until element access.
            let mut fields = BTreeMap::new();
            fields.insert("__proxy_sql".to_string(), V::str(&sql));
            fields.insert("__proxy_entity".to_string(), V::str(&target));
            V::Obj(Rc::new(RefCell::new(fields)))
        } else {
            let rs = self.data.read_now(&sql)?;
            if many {
                rs_to_entities(&target, &rs)
            } else if rs.is_empty() {
                V::Null
            } else {
                row_to_entity(&target, &rs, 0)
            }
        };
        o.borrow_mut().insert(memo_key, result.clone());
        Ok(result)
    }

    fn fetch_assoc_now(&mut self, owner: &V, entity: &str, assoc: &str) -> Result<V, RunError> {
        let def = self.entity_def(entity)?;
        let a = def
            .assoc(assoc)
            .ok_or_else(|| RunError::new(format!("no assoc {assoc} on {entity}")))?
            .clone();
        let key = match &a.kind {
            AssocKind::OneToMany { .. } => self.read_field(owner, &def.pk)?,
            AssocKind::ManyToOne { fk_column } => self.read_field(owner, fk_column)?,
        };
        let key = self.force(key)?;
        let (sql, target, many) = self.data.assoc_sql(entity, assoc, &key.to_sql())?;
        let rs = self.data.read_now(&sql)?;
        Ok(if many {
            rs_to_entities(&target, &rs)
        } else if rs.is_empty() {
            V::Null
        } else {
            row_to_entity(&target, &rs, 0)
        })
    }

    fn materialize_proxy(&mut self, o: &Rc<RefCell<BTreeMap<String, V>>>) -> Result<V, RunError> {
        if let Some(items) = o.borrow().get("__proxy_items").cloned() {
            return Ok(items);
        }
        let (sql, target) = {
            let b = o.borrow();
            let sql = match b.get("__proxy_sql") {
                Some(V::Str(s)) => s.to_string(),
                _ => return Err(RunError::new("not a proxy")),
            };
            let target = match b.get("__proxy_entity") {
                Some(V::Str(s)) => s.to_string(),
                _ => return Err(RunError::new("proxy without target")),
            };
            (sql, target)
        };
        let rs = self.data.read_now(&sql)?;
        let items = rs_to_entities(&target, &rs);
        o.borrow_mut()
            .insert("__proxy_items".to_string(), items.clone());
        Ok(items)
    }

    fn entity_def(&self, name: &str) -> Result<sloth_orm::EntityDef, RunError> {
        self.data
            .schema
            .entity(name)
            .cloned()
            .ok_or_else(|| RunError::new(format!("unknown entity {name}")))
    }

    fn string_arg(&mut self, v: V) -> Result<String, RunError> {
        let v = self.force(v)?;
        match v {
            V::Str(s) => Ok(s.to_string()),
            other => Err(RunError::new(format!("expected string, got {other:?}"))),
        }
    }

    // ------------------------------------------------------------------
    // Display (deep forcing)
    // ------------------------------------------------------------------

    fn display(&mut self, v: &V) -> Result<String, RunError> {
        self.display_depth(v, 0)
    }

    fn display_depth(&mut self, v: &V, depth: usize) -> Result<String, RunError> {
        if depth > 24 {
            return Ok("<deep>".to_string());
        }
        let v = self.force(v.clone())?;
        Ok(match v {
            V::Null => "null".to_string(),
            V::Bool(b) => b.to_string(),
            V::Int(i) => i.to_string(),
            V::Float(f) => format!("{f}"),
            V::Str(s) => s.to_string(),
            V::List(xs) => {
                let items = xs.borrow().clone();
                let mut parts = Vec::with_capacity(items.len());
                for item in items {
                    parts.push(self.display_depth(&item, depth + 1)?);
                }
                format!("[{}]", parts.join(", "))
            }
            V::Obj(o) => {
                if o.borrow().contains_key("__proxy_sql") {
                    let items = self.materialize_proxy(&o)?;
                    return self.display_depth(&items, depth + 1);
                }
                let fields: Vec<(String, V)> = o
                    .borrow()
                    .iter()
                    .filter(|(k, _)| !k.starts_with("__"))
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                let mut parts = Vec::with_capacity(fields.len());
                for (k, fv) in fields {
                    parts.push(format!("{k}={}", self.display_depth(&fv, depth + 1)?));
                }
                format!("{{{}}}", parts.join(", "))
            }
            V::Rs(rs) => format_rs(&rs),
            V::Thunk(_) => unreachable!("forced above"),
        })
    }
}

fn lit_to_v(l: &Lit) -> V {
    match l {
        Lit::Null => V::Null,
        Lit::Bool(b) => V::Bool(*b),
        Lit::Int(i) => V::Int(*i),
        Lit::Float(f) => V::Float(*f),
        Lit::Str(s) => V::str(s),
    }
}

fn num(v: &V) -> Result<f64, RunError> {
    match v {
        V::Int(i) => Ok(*i as f64),
        V::Float(f) => Ok(*f),
        V::Bool(b) => Ok(*b as i64 as f64),
        other => Err(RunError::new(format!("expected number, got {other:?}"))),
    }
}

fn int(v: &V) -> Result<i64, RunError> {
    match v {
        V::Int(i) => Ok(*i),
        V::Float(f) => Ok(*f as i64),
        other => Err(RunError::new(format!("expected int, got {other:?}"))),
    }
}

fn arith(
    a: &V,
    b: &V,
    f_int: impl Fn(i64, i64) -> i64,
    f_float: impl Fn(f64, f64) -> f64,
) -> Result<V, RunError> {
    match (a, b) {
        (V::Int(x), V::Int(y)) => Ok(V::Int(f_int(*x, *y))),
        _ => Ok(V::Float(f_float(num(a)?, num(b)?))),
    }
}

fn values_eq(a: &V, b: &V) -> bool {
    match (a, b) {
        (V::Null, V::Null) => true,
        (V::Bool(x), V::Bool(y)) => x == y,
        (V::Int(x), V::Int(y)) => x == y,
        (V::Float(x), V::Float(y)) => x == y,
        (V::Int(x), V::Float(y)) | (V::Float(y), V::Int(x)) => *x as f64 == *y,
        (V::Str(x), V::Str(y)) => x == y,
        (V::List(x), V::List(y)) => Rc::ptr_eq(x, y),
        (V::Obj(x), V::Obj(y)) => Rc::ptr_eq(x, y),
        (V::Rs(x), V::Rs(y)) => Rc::ptr_eq(x, y),
        _ => false,
    }
}

fn compare(a: &V, b: &V) -> Result<std::cmp::Ordering, RunError> {
    match (a, b) {
        (V::Str(x), V::Str(y)) => Ok(x.cmp(y)),
        _ => {
            let (x, y) = (num(a)?, num(b)?);
            Ok(x.total_cmp(&y))
        }
    }
}

/// Applies a [`Deser`] to a fetched result set.
fn deserialize(deser: &Deser, rs: ResultSet) -> V {
    match deser {
        Deser::Raw => V::Rs(Rc::new(rs)),
        Deser::EntityOpt(entity) => {
            if rs.is_empty() {
                V::Null
            } else {
                row_to_entity(entity, &rs, 0)
            }
        }
        Deser::EntityList(entity) => rs_to_entities(entity, &rs),
        Deser::Scalar => rs
            .rows
            .first()
            .and_then(|r| r.first())
            .map(V::from_sql)
            .unwrap_or(V::Null),
    }
}

/// A result-set row as a plain (non-entity) object.
fn row_to_plain_obj(rs: &ResultSet, row: usize) -> V {
    let mut fields = BTreeMap::new();
    for (ci, col) in rs.columns.iter().enumerate() {
        fields.insert(col.clone(), V::from_sql(&rs.rows[row][ci]));
    }
    V::Obj(Rc::new(RefCell::new(fields)))
}

fn format_rs(rs: &ResultSet) -> String {
    let mut rows = Vec::with_capacity(rs.len());
    for r in &rs.rows {
        let cells: Vec<String> = r.iter().map(|v| v.to_string()).collect();
        rows.push(cells.join(","));
    }
    format!("rs[{}]", rows.join("|"))
}
