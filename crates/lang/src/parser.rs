//! Lexer and recursive-descent parser for the kernel language's Java-ish
//! concrete syntax.
//!
//! ```text
//! fn handle_request(patient_id) {
//!     let model = new { };
//!     if (has_privilege("VIEW_PATIENTS")) {
//!         let p = orm_find("patient", patient_id);
//!         model.patient = p;
//!         model.encounters = orm_assoc(p, "encounters");
//!     }
//!     return model;
//! }
//! ```

use std::fmt;

use crate::ast::*;

/// Parse error with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// 1-based source line.
    pub line: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Sym(&'static str),
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let b = src.as_bytes();
    let mut i = 0;
    let mut line = 1;
    let mut out = Vec::new();
    while i < b.len() {
        let c = b[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            '{' | '}' | '(' | ')' | '[' | ']' | ',' | ';' | '.' | ':' | '%' | '*' | '+' | '-'
            | '/' => {
                out.push((
                    Tok::Sym(match c {
                        '{' => "{",
                        '}' => "}",
                        '(' => "(",
                        ')' => ")",
                        '[' => "[",
                        ']' => "]",
                        ',' => ",",
                        ';' => ";",
                        '.' => ".",
                        ':' => ":",
                        '%' => "%",
                        '*' => "*",
                        '+' => "+",
                        '-' => "-",
                        _ => "/",
                    }),
                    line,
                ));
                i += 1;
            }
            '=' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push((Tok::Sym("=="), line));
                    i += 2;
                } else {
                    out.push((Tok::Sym("="), line));
                    i += 1;
                }
            }
            '!' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push((Tok::Sym("!="), line));
                    i += 2;
                } else {
                    out.push((Tok::Sym("!"), line));
                    i += 1;
                }
            }
            '<' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push((Tok::Sym("<="), line));
                    i += 2;
                } else {
                    out.push((Tok::Sym("<"), line));
                    i += 1;
                }
            }
            '>' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push((Tok::Sym(">="), line));
                    i += 2;
                } else {
                    out.push((Tok::Sym(">"), line));
                    i += 1;
                }
            }
            '&' => {
                if b.get(i + 1) == Some(&b'&') {
                    out.push((Tok::Sym("&&"), line));
                    i += 2;
                } else {
                    return Err(ParseError {
                        message: "lone '&'".into(),
                        line,
                    });
                }
            }
            '|' => {
                if b.get(i + 1) == Some(&b'|') {
                    out.push((Tok::Sym("||"), line));
                    i += 2;
                } else {
                    return Err(ParseError {
                        message: "lone '|'".into(),
                        line,
                    });
                }
            }
            '"' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match b.get(i) {
                        None => {
                            return Err(ParseError {
                                message: "unterminated string".into(),
                                line,
                            })
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            let esc = b.get(i + 1).copied().ok_or(ParseError {
                                message: "dangling escape".into(),
                                line,
                            })?;
                            s.push(match esc {
                                b'n' => '\n',
                                b't' => '\t',
                                b'"' => '"',
                                b'\\' => '\\',
                                other => other as char,
                            });
                            i += 2;
                        }
                        Some(&ch) => {
                            if ch == b'\n' {
                                line += 1;
                            }
                            s.push(ch as char);
                            i += 1;
                        }
                    }
                }
                out.push((Tok::Str(s), line));
            }
            '0'..='9' => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                if i < b.len() && b[i] == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                    let v: f64 = src[start..i].parse().map_err(|_| ParseError {
                        message: "bad float".into(),
                        line,
                    })?;
                    out.push((Tok::Float(v), line));
                } else {
                    let v: i64 = src[start..i].parse().map_err(|_| ParseError {
                        message: "bad int".into(),
                        line,
                    })?;
                    out.push((Tok::Int(v), line));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && ((b[i] as char).is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push((Tok::Ident(src[start..i].to_string()), line));
            }
            other => {
                return Err(ParseError {
                    message: format!("unexpected character {other:?}"),
                    line,
                })
            }
        }
    }
    Ok(out)
}

/// Parses a whole program (a sequence of `fn` definitions).
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    let mut p = P { toks, pos: 0 };
    let mut functions = Vec::new();
    while !p.done() {
        functions.push(p.function()?);
    }
    Ok(Program { functions })
}

/// Parses a statement sequence (convenient for tests).
pub fn parse_block(src: &str) -> Result<Vec<Stmt>, ParseError> {
    let toks = lex(src)?;
    let mut p = P { toks, pos: 0 };
    let mut stmts = Vec::new();
    while !p.done() {
        stmts.push(p.stmt()?);
    }
    Ok(stmts)
}

struct P {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl P {
    fn done(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|(_, l)| *l)
            .unwrap_or(0)
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            message: msg.into(),
            line: self.line(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.peek().cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if let Some(Tok::Sym(t)) = self.peek() {
            if *t == s {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_sym(&mut self, s: &str) -> Result<(), ParseError> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{s}', found {:?}", self.peek())))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s == kw {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn function(&mut self) -> Result<Function, ParseError> {
        if !self.eat_kw("fn") {
            return Err(self.err("expected 'fn'"));
        }
        let name = self.expect_ident()?;
        self.expect_sym("(")?;
        let mut params = Vec::new();
        if !self.eat_sym(")") {
            loop {
                params.push(self.expect_ident()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
        }
        let body = self.block()?;
        Ok(Function { name, params, body })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_sym("{")?;
        let mut stmts = Vec::new();
        while !self.eat_sym("}") {
            if self.done() {
                return Err(self.err("unterminated block"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.eat_kw("let") {
            let name = self.expect_ident()?;
            self.expect_sym("=")?;
            let e = self.expr()?;
            self.expect_sym(";")?;
            return Ok(Stmt::Let(name, e));
        }
        if self.eat_kw("if") {
            self.expect_sym("(")?;
            let cond = self.expr()?;
            self.expect_sym(")")?;
            let then = self.block()?;
            let els = if self.eat_kw("else") {
                if let Some(Tok::Ident(s)) = self.peek() {
                    if s == "if" {
                        // else-if chains as a nested If.
                        vec![self.stmt()?]
                    } else {
                        return Err(self.err("expected block or 'if' after else"));
                    }
                } else {
                    self.block()?
                }
            } else {
                Vec::new()
            };
            return Ok(Stmt::If(cond, then, els));
        }
        if self.eat_kw("while") {
            self.expect_sym("(")?;
            let cond = self.expr()?;
            self.expect_sym(")")?;
            let body = self.block()?;
            return Ok(Stmt::While(cond, body));
        }
        if self.eat_kw("break") {
            self.expect_sym(";")?;
            return Ok(Stmt::Break);
        }
        if self.eat_kw("continue") {
            self.expect_sym(";")?;
            return Ok(Stmt::Continue);
        }
        if self.eat_kw("return") {
            if self.eat_sym(";") {
                return Ok(Stmt::Return(None));
            }
            let e = self.expr()?;
            self.expect_sym(";")?;
            return Ok(Stmt::Return(Some(e)));
        }
        // Expression or assignment.
        let e = self.expr()?;
        if self.eat_sym("=") {
            let rhs = self.expr()?;
            self.expect_sym(";")?;
            let lv = match e {
                Expr::Var(v) => LValue::Var(v),
                Expr::Field(b, f) => LValue::Field(*b, f),
                Expr::Index(b, i) => LValue::Index(*b, *i),
                _ => return Err(self.err("invalid assignment target")),
            };
            return Ok(Stmt::Assign(lv, rhs));
        }
        self.expect_sym(";")?;
        Ok(Stmt::ExprStmt(e))
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut l = self.and_expr()?;
        while self.eat_sym("||") {
            let r = self.and_expr()?;
            l = Expr::Binary(BinOp::Or, Box::new(l), Box::new(r));
        }
        Ok(l)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut l = self.cmp_expr()?;
        while self.eat_sym("&&") {
            let r = self.cmp_expr()?;
            l = Expr::Binary(BinOp::And, Box::new(l), Box::new(r));
        }
        Ok(l)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let l = self.add_expr()?;
        let op = if self.eat_sym("==") {
            BinOp::Eq
        } else if self.eat_sym("!=") {
            BinOp::Ne
        } else if self.eat_sym("<=") {
            BinOp::Le
        } else if self.eat_sym(">=") {
            BinOp::Ge
        } else if self.eat_sym("<") {
            BinOp::Lt
        } else if self.eat_sym(">") {
            BinOp::Gt
        } else {
            return Ok(l);
        };
        let r = self.add_expr()?;
        Ok(Expr::Binary(op, Box::new(l), Box::new(r)))
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut l = self.mul_expr()?;
        loop {
            let op = if self.eat_sym("+") {
                BinOp::Add
            } else if self.eat_sym("-") {
                BinOp::Sub
            } else {
                return Ok(l);
            };
            let r = self.mul_expr()?;
            l = Expr::Binary(op, Box::new(l), Box::new(r));
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut l = self.unary_expr()?;
        loop {
            let op = if self.eat_sym("*") {
                BinOp::Mul
            } else if self.eat_sym("/") {
                BinOp::Div
            } else if self.eat_sym("%") {
                BinOp::Mod
            } else {
                return Ok(l);
            };
            let r = self.unary_expr()?;
            l = Expr::Binary(op, Box::new(l), Box::new(r));
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_sym("!") {
            let e = self.unary_expr()?;
            return Ok(Expr::Unary(UnOp::Not, Box::new(e)));
        }
        if self.eat_sym("-") {
            let e = self.unary_expr()?;
            return Ok(Expr::Unary(UnOp::Neg, Box::new(e)));
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.atom()?;
        loop {
            if self.eat_sym(".") {
                let field = self.expect_ident()?;
                e = Expr::Field(Box::new(e), field);
            } else if self.eat_sym("[") {
                let idx = self.expr()?;
                self.expect_sym("]")?;
                e = Expr::Index(Box::new(e), Box::new(idx));
            } else {
                return Ok(e);
            }
        }
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        if self.eat_sym("(") {
            let e = self.expr()?;
            self.expect_sym(")")?;
            return Ok(e);
        }
        if self.eat_sym("[") {
            let mut items = Vec::new();
            if !self.eat_sym("]") {
                loop {
                    items.push(self.expr()?);
                    if !self.eat_sym(",") {
                        break;
                    }
                }
                self.expect_sym("]")?;
            }
            return Ok(Expr::NewList(items));
        }
        match self.bump() {
            Some(Tok::Int(v)) => Ok(Expr::Lit(Lit::Int(v))),
            Some(Tok::Float(v)) => Ok(Expr::Lit(Lit::Float(v))),
            Some(Tok::Str(s)) => Ok(Expr::Lit(Lit::Str(s))),
            Some(Tok::Ident(name)) => match name.as_str() {
                "true" => Ok(Expr::Lit(Lit::Bool(true))),
                "false" => Ok(Expr::Lit(Lit::Bool(false))),
                "null" => Ok(Expr::Lit(Lit::Null)),
                "new" => {
                    self.expect_sym("{")?;
                    let mut fields = Vec::new();
                    if !self.eat_sym("}") {
                        loop {
                            let f = self.expect_ident()?;
                            self.expect_sym(":")?;
                            fields.push((f, self.expr()?));
                            if !self.eat_sym(",") {
                                break;
                            }
                        }
                        self.expect_sym("}")?;
                    }
                    Ok(Expr::NewObject(fields))
                }
                _ => {
                    if self.eat_sym("(") {
                        let mut args = Vec::new();
                        if !self.eat_sym(")") {
                            loop {
                                args.push(self.expr()?);
                                if !self.eat_sym(",") {
                                    break;
                                }
                            }
                            self.expect_sym(")")?;
                        }
                        Ok(Expr::Call(name, args))
                    } else {
                        Ok(Expr::Var(name))
                    }
                }
            },
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_function_with_controls() {
        let p = parse_program(
            r#"
            fn main(n) {
                let total = 0;
                let i = 0;
                while (i < n) {
                    if (i % 2 == 0) { total = total + i; } else { total = total - 1; }
                    i = i + 1;
                }
                return total;
            }
            "#,
        )
        .unwrap();
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].params, vec!["n"]);
    }

    #[test]
    fn parse_objects_lists_calls() {
        let stmts = parse_block(
            r#"
            let model = new { patient: null, count: 3 };
            let xs = [1, 2, 3];
            model.patient = orm_find("patient", xs[0]);
            print(str(model.count));
            "#,
        )
        .unwrap();
        assert_eq!(stmts.len(), 4);
        match &stmts[2] {
            Stmt::Assign(LValue::Field(_, f), Expr::Call(name, args)) => {
                assert_eq!(f, "patient");
                assert_eq!(name, "orm_find");
                assert_eq!(args.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn else_if_chain() {
        let stmts =
            parse_block(r#"if (a) { x = 1; } else if (b) { x = 2; } else { x = 3; }"#).unwrap();
        match &stmts[0] {
            Stmt::If(_, _, els) => match &els[0] {
                Stmt::If(_, _, els2) => assert_eq!(els2.len(), 1),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn comments_and_escapes() {
        let stmts =
            parse_block("// header comment\nlet s = \"a\\n\\\"b\\\"\"; // trailing\n").unwrap();
        match &stmts[0] {
            Stmt::Let(_, Expr::Lit(Lit::Str(s))) => assert_eq!(s, "a\n\"b\""),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence() {
        let stmts = parse_block("let x = 1 + 2 * 3 == 7 && true;").unwrap();
        match &stmts[0] {
            Stmt::Let(_, Expr::Binary(BinOp::And, l, _)) => match &**l {
                Expr::Binary(BinOp::Eq, _, _) => {}
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_reporting_has_lines() {
        let err = parse_program("fn broken( {").unwrap_err();
        assert_eq!(err.line, 1);
        let err2 = parse_block("let x = ;").unwrap_err();
        assert!(err2.message.contains("expected expression"));
    }

    #[test]
    fn unary_operators() {
        let stmts = parse_block("let a = !b; let c = -d;").unwrap();
        assert!(matches!(&stmts[0], Stmt::Let(_, Expr::Unary(UnOp::Not, _))));
        assert!(matches!(&stmts[1], Stmt::Let(_, Expr::Unary(UnOp::Neg, _))));
    }
}
