//! Runtime values of the kernel-language interpreters.
//!
//! `V` is shared by the standard and lazy interpreters; only the lazy one
//! ever constructs [`V::Thunk`]. Objects and lists are reference-typed
//! (shared mutable heap cells), matching Java semantics.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

use sloth_sql::ResultSet;

/// A runtime value.
#[derive(Clone)]
pub enum V {
    /// `null`
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Immutable string.
    Str(Rc<str>),
    /// Mutable list (Java `List`).
    List(Rc<RefCell<Vec<V>>>),
    /// Mutable object (entity, model map, proxy…).
    Obj(Rc<RefCell<BTreeMap<String, V>>>),
    /// A SQL result set handle.
    Rs(Rc<ResultSet>),
    /// A delayed computation (lazy interpreter only).
    Thunk(LazyVal),
}

/// State of a lazy value.
pub enum LazyState {
    /// Evaluated, memoized.
    Done(V),
    /// Not yet evaluated; the payload is interpreted by the lazy
    /// interpreter (it owns the evaluation logic).
    Pending(Pending),
    /// Currently being forced (re-entrancy guard).
    InFlight,
}

/// What a pending thunk will do when forced. The lazy interpreter constructs
/// and consumes these; they are defined here so `V` can embed them.
pub enum Pending {
    /// Evaluate `expr` under the captured variable snapshot.
    Expr {
        /// Captured free variables (by value — the paper's thunk env σ).
        env: Vec<(String, V)>,
        /// The delayed expression.
        expr: Rc<crate::ast::Expr>,
    },
    /// Fetch a registered query's result from the query store and
    /// deserialize it.
    Query {
        /// Registered query id.
        id: sloth_core::QueryId,
        /// How to turn the result set into a value.
        deser: Deser,
    },
    /// Run a whole deferred statement block (branch deferral / thunk
    /// coalescing §4.2–4.3); outputs are read from the shared driver
    /// afterwards.
    Block {
        /// The shared block driver (one per deferred region).
        driver: Rc<BlockDriver>,
        /// Which output this projection reads (`None` = drive only).
        output: Option<String>,
    },
    /// Call of a pure user function with already-evaluated (possibly
    /// thunked) arguments.
    Call {
        /// Function name.
        func: String,
        /// Argument values.
        args: Vec<V>,
    },
}

/// Shared state of one deferred statement block (§4.2–4.3): the captured
/// environment, the statements, and the output values once driven.
pub struct BlockDriver {
    /// Captured variable snapshot (the thunk environment σ).
    pub env: Vec<(String, V)>,
    /// The deferred statements.
    pub body: Rc<Vec<crate::ast::Stmt>>,
    /// Names of output variables collected after the driver run.
    pub outputs: Vec<String>,
    /// `None` until the block has run; then the output variable values.
    pub results: RefCell<Option<BTreeMap<String, V>>>,
}

/// Deserialization applied to a fetched result set.
#[derive(Clone)]
pub enum Deser {
    /// Keep the raw result set.
    Raw,
    /// Single entity (or null) of the named entity type.
    EntityOpt(String),
    /// List of entities of the named entity type.
    EntityList(String),
    /// Scalar from row 0, column 0 (aggregates).
    Scalar,
}

/// A shared, memoizing lazy cell (clones share the cell).
#[derive(Clone)]
pub struct LazyVal(pub Rc<RefCell<LazyState>>);

impl LazyVal {
    /// Wraps a pending computation.
    pub fn pending(p: Pending) -> Self {
        LazyVal(Rc::new(RefCell::new(LazyState::Pending(p))))
    }

    /// Whether the value has been forced.
    pub fn is_done(&self) -> bool {
        matches!(&*self.0.borrow(), LazyState::Done(_))
    }
}

impl V {
    /// Makes a string value.
    pub fn str(s: impl AsRef<str>) -> V {
        V::Str(Rc::from(s.as_ref()))
    }

    /// Makes an empty object.
    pub fn new_obj() -> V {
        V::Obj(Rc::new(RefCell::new(BTreeMap::new())))
    }

    /// Makes a list from values.
    pub fn list(items: Vec<V>) -> V {
        V::List(Rc::new(RefCell::new(items)))
    }

    /// Java-ish truthiness: `null`/`false`/`0`/`""` are false; objects,
    /// lists and result sets are true.
    pub fn truthy(&self) -> bool {
        match self {
            V::Null => false,
            V::Bool(b) => *b,
            V::Int(i) => *i != 0,
            V::Float(f) => *f != 0.0,
            V::Str(s) => !s.is_empty(),
            V::List(_) | V::Obj(_) | V::Rs(_) => true,
            V::Thunk(_) => true, // callers force before testing
        }
    }

    /// Converts a SQL value into a runtime value.
    pub fn from_sql(v: &sloth_sql::Value) -> V {
        match v {
            sloth_sql::Value::Null => V::Null,
            sloth_sql::Value::Bool(b) => V::Bool(*b),
            sloth_sql::Value::Int(i) => V::Int(*i),
            sloth_sql::Value::Float(f) => V::Float(*f),
            sloth_sql::Value::Str(s) => V::str(s),
        }
    }

    /// Converts to a SQL value (for query construction); thunks must be
    /// forced first.
    pub fn to_sql(&self) -> sloth_sql::Value {
        match self {
            V::Null => sloth_sql::Value::Null,
            V::Bool(b) => sloth_sql::Value::Bool(*b),
            V::Int(i) => sloth_sql::Value::Int(*i),
            V::Float(f) => sloth_sql::Value::Float(*f),
            V::Str(s) => sloth_sql::Value::Str(s.to_string()),
            other => sloth_sql::Value::Str(other.display_shallow()),
        }
    }

    /// Display without forcing (thunks show as `<thunk>`): debugging aid.
    pub fn display_shallow(&self) -> String {
        match self {
            V::Null => "null".into(),
            V::Bool(b) => b.to_string(),
            V::Int(i) => i.to_string(),
            V::Float(f) => format!("{f}"),
            V::Str(s) => s.to_string(),
            V::List(xs) => format!("<list:{}>", xs.borrow().len()),
            V::Obj(_) => "<obj>".into(),
            V::Rs(rs) => format!("<rs:{}>", rs.len()),
            V::Thunk(t) => {
                if t.is_done() {
                    "<thunk:done>".into()
                } else {
                    "<thunk>".into()
                }
            }
        }
    }
}

impl fmt::Debug for V {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_shallow())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!V::Null.truthy());
        assert!(!V::Int(0).truthy());
        assert!(V::Int(1).truthy());
        assert!(!V::str("").truthy());
        assert!(V::str("x").truthy());
        assert!(V::new_obj().truthy());
        assert!(V::list(vec![]).truthy());
    }

    #[test]
    fn sql_round_trip() {
        let vals = [
            sloth_sql::Value::Null,
            sloth_sql::Value::Int(5),
            sloth_sql::Value::Str("x".into()),
            sloth_sql::Value::Bool(true),
            sloth_sql::Value::Float(2.5),
        ];
        for v in vals {
            assert_eq!(V::from_sql(&v).to_sql(), v);
        }
    }

    #[test]
    fn clones_share_lists() {
        let l = V::list(vec![V::Int(1)]);
        let l2 = l.clone();
        if let V::List(xs) = &l {
            xs.borrow_mut().push(V::Int(2));
        }
        if let V::List(xs) = &l2 {
            assert_eq!(xs.borrow().len(), 2);
        }
    }
}
