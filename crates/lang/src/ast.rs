//! Abstract syntax of the kernel language (Fig. 4 of the paper, extended
//! with functions, objects, lists and builtin calls so that realistic web
//! controllers can be written in it).
//!
//! The concrete syntax is Java-ish; see [`crate::parser`]. `R(e)` is spelled
//! `query(e)` and `W(e)` is spelled `exec(e)`.

use std::fmt;

/// Literal constants.
#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (numeric addition or string concatenation)
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `!`
    Not,
    /// `-`
    Neg,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal.
    Lit(Lit),
    /// Variable reference.
    Var(String),
    /// Field read `e.f`.
    Field(Box<Expr>, String),
    /// List/result-set index `e[i]`.
    Index(Box<Expr>, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Call of a user function or builtin: `f(a, b)`.
    Call(String, Vec<Expr>),
    /// Object literal `new { f: e, … }`.
    NewObject(Vec<(String, Expr)>),
    /// List literal `[e, …]`.
    NewList(Vec<Expr>),
}

/// Assignment targets.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// `x = …`
    Var(String),
    /// `e.f = …`
    Field(Expr, String),
    /// `e[i] = …`
    Index(Expr, Expr),
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let x = e;`
    Let(String, Expr),
    /// `lv = e;`
    Assign(LValue, Expr),
    /// `if (e) { … } else { … }`
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (e) { … }` (canonicalized to `while (true)` by simplify).
    While(Expr, Vec<Stmt>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `return e?;`
    Return(Option<Expr>),
    /// Bare expression statement `e;`.
    ExprStmt(Expr),
    /// A deferred statement block produced by the optimizer (§4.2 branch
    /// deferral / §4.3 thunk coalescing): never written in source. The lazy
    /// interpreter turns the whole block into one thunk whose `outputs`
    /// become projection thunks; the standard interpreter executes the body
    /// inline.
    DeferBlock {
        /// The deferred statements.
        body: Vec<Stmt>,
        /// Variables defined/assigned inside that are observable after the
        /// block.
        outputs: Vec<String>,
        /// Whether the body issues write queries (BD-across-writes,
        /// §3.5): effectful blocks are tracked by the lazy interpreter
        /// and forced at end of request if nothing demanded their
        /// outputs — deferred writes must always execute.
        effectful: bool,
    },
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A whole program: function definitions; execution starts at `main`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// All functions, in source order.
    pub functions: Vec<Function>,
}

impl Program {
    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Merges another program's functions after this one's (later
    /// definitions with duplicate names are rejected by the interpreters).
    pub fn extend(&mut self, other: Program) {
        self.functions.extend(other.functions);
    }

    /// Total statement count (after any transformation), for reporting.
    pub fn stmt_count(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::If(_, t, e) => 1 + count(t) + count(e),
                    Stmt::While(_, b) => 1 + count(b),
                    Stmt::DeferBlock { body, .. } => count(body),
                    _ => 1,
                })
                .sum()
        }
        self.functions.iter().map(|f| count(&f.body)).sum()
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lit::Null => write!(f, "null"),
            Lit::Bool(b) => write!(f, "{b}"),
            Lit::Int(i) => write!(f, "{i}"),
            Lit::Float(x) => write!(f, "{x}"),
            Lit::Str(s) => write!(f, "{s:?}"),
        }
    }
}

/// Collects every variable assigned (not `let`-declared) in a statement
/// subtree — used by branch deferral to determine thunk-block outputs.
pub fn assigned_vars(stmts: &[Stmt], out: &mut Vec<String>) {
    for s in stmts {
        match s {
            Stmt::Assign(LValue::Var(v), _) if !out.contains(v) => {
                out.push(v.clone());
            }
            Stmt::If(_, t, e) => {
                assigned_vars(t, out);
                assigned_vars(e, out);
            }
            Stmt::While(_, b) => assigned_vars(b, out),
            Stmt::DeferBlock { body, .. } => assigned_vars(body, out),
            _ => {}
        }
    }
}

/// Collects free variable reads of an expression.
pub fn expr_vars(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::Lit(_) => {}
        Expr::Var(v) => {
            if !out.contains(v) {
                out.push(v.clone());
            }
        }
        Expr::Field(b, _) => expr_vars(b, out),
        Expr::Index(b, i) => {
            expr_vars(b, out);
            expr_vars(i, out);
        }
        Expr::Binary(_, a, b) => {
            expr_vars(a, out);
            expr_vars(b, out);
        }
        Expr::Unary(_, a) => expr_vars(a, out),
        Expr::Call(_, args) => {
            for a in args {
                expr_vars(a, out);
            }
        }
        Expr::NewObject(fields) => {
            for (_, v) in fields {
                expr_vars(v, out);
            }
        }
        Expr::NewList(items) => {
            for v in items {
                expr_vars(v, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assigned_vars_nested() {
        let stmts = vec![
            Stmt::Assign(LValue::Var("a".into()), Expr::Lit(Lit::Int(1))),
            Stmt::If(
                Expr::Lit(Lit::Bool(true)),
                vec![Stmt::Assign(
                    LValue::Var("b".into()),
                    Expr::Lit(Lit::Int(2)),
                )],
                vec![Stmt::Assign(
                    LValue::Var("a".into()),
                    Expr::Lit(Lit::Int(3)),
                )],
            ),
        ];
        let mut out = Vec::new();
        assigned_vars(&stmts, &mut out);
        assert_eq!(out, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn expr_vars_dedup() {
        let e = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::Var("x".into())),
            Box::new(Expr::Binary(
                BinOp::Mul,
                Box::new(Expr::Var("x".into())),
                Box::new(Expr::Var("y".into())),
            )),
        );
        let mut out = Vec::new();
        expr_vars(&e, &mut out);
        assert_eq!(out, vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn stmt_count_recurses() {
        let p = Program {
            functions: vec![Function {
                name: "f".into(),
                params: vec![],
                body: vec![Stmt::While(
                    Expr::Lit(Lit::Bool(true)),
                    vec![Stmt::Break, Stmt::Continue],
                )],
            }],
        };
        assert_eq!(p.stmt_count(), 3);
    }
}
