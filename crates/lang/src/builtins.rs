//! Builtin ("external library") function classification.
//!
//! The Sloth compiler labels every callee (§3.4): internal pure methods are
//! deferred whole; internal methods with side effects run eagerly with thunk
//! arguments; external methods force everything; query methods register with
//! the query store. Builtins model the JDK / framework surface our kernel
//! programs use.

/// How a builtin behaves under lazy compilation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuiltinKind {
    /// Pure computation — deferrable as a thunk (`str`, `upper`, …).
    Pure,
    /// Reads mutable state (heap / result sets) — executes at evaluation,
    /// forcing the receiver, like field and array reads (§3.6). The result
    /// may still contain thunks.
    EagerRead,
    /// Mutates the heap — executes at evaluation; the written value may
    /// stay a thunk (§3.5 heap writes).
    HeapWrite,
    /// Externally visible side effect (console/HTTP output) — forces its
    /// arguments deeply and executes now (§3.4 external methods).
    External,
    /// Issues a read query — registers with the query store (§3.3).
    Query,
    /// Issues a write query / transaction boundary — flushes the store.
    WriteQuery,
}

/// Looks up a builtin by name; `None` means a user-defined function.
pub fn builtin_kind(name: &str) -> Option<BuiltinKind> {
    use BuiltinKind::*;
    Some(match name {
        // String / scalar helpers (JDK-ish).
        "str" | "upper" | "lower" | "concat" | "contains" | "starts_with" | "substr"
        | "len_str" | "abs" | "min" | "max" | "is_null" | "not_null" | "to_int" => Pure,
        // Collection / result-set reads.
        "len" | "at" | "nrows" | "cell" | "first" | "obj_get" | "has_field" => EagerRead,
        // Collection mutation.
        "push" | "obj_put" | "clear" => HeapWrite,
        // Output.
        "print" | "write" | "render" | "log" => External,
        // Reads against the database.
        "query" | "orm_find" | "orm_assoc" | "orm_find_where" | "orm_find_all"
        | "orm_count_where" => Query,
        // Writes / transaction boundaries.
        "exec" | "orm_save" | "orm_update" | "orm_delete" | "commit" | "begin" | "rollback" => {
            WriteQuery
        }
        _ => return None,
    })
}

/// Whether calls to this builtin touch persistent data (for the §4.1
/// persistence analysis).
pub fn builtin_is_persistent(name: &str) -> bool {
    matches!(
        builtin_kind(name),
        Some(BuiltinKind::Query | BuiltinKind::WriteQuery)
    )
}

/// Whether this builtin is pure (for the purity analysis that feeds call
/// deferral and branch deferral).
pub fn builtin_is_pure(name: &str) -> bool {
    matches!(builtin_kind(name), Some(BuiltinKind::Pure))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_spot_checks() {
        assert_eq!(builtin_kind("str"), Some(BuiltinKind::Pure));
        assert_eq!(builtin_kind("at"), Some(BuiltinKind::EagerRead));
        assert_eq!(builtin_kind("push"), Some(BuiltinKind::HeapWrite));
        assert_eq!(builtin_kind("print"), Some(BuiltinKind::External));
        assert_eq!(builtin_kind("orm_find"), Some(BuiltinKind::Query));
        assert_eq!(builtin_kind("commit"), Some(BuiltinKind::WriteQuery));
        assert_eq!(builtin_kind("my_user_fn"), None);
    }

    #[test]
    fn persistence_and_purity() {
        assert!(builtin_is_persistent("query"));
        assert!(builtin_is_persistent("orm_save"));
        assert!(!builtin_is_persistent("print"));
        assert!(builtin_is_pure("upper"));
        assert!(!builtin_is_pure("push"));
    }
}
