//! Code simplification (§3.1): canonicalizes loops to `while (true)` with
//! explicit `break`, and flattens compound expressions so every statement
//! performs at most one operation (introducing `__t<n>` temporaries).
//!
//! Flattening matters for fidelity of the overhead model: the paper notes
//! that "the number of operations (and thus the number of Thunk objects)
//! can be much larger than the number of lines of Java code" — thunk
//! coalescing (§4.3) exists precisely to claw this back.

use crate::ast::*;

/// Simplifies a whole program.
pub fn simplify_program(p: &Program) -> Program {
    Program {
        functions: p.functions.iter().map(simplify_function).collect(),
    }
}

/// Simplifies one function.
pub fn simplify_function(f: &Function) -> Function {
    let mut ctx = Ctx { next_temp: 0 };
    Function {
        name: f.name.clone(),
        params: f.params.clone(),
        body: ctx.block(&f.body),
    }
}

struct Ctx {
    next_temp: usize,
}

impl Ctx {
    fn fresh(&mut self) -> String {
        let name = format!("__t{}", self.next_temp);
        self.next_temp += 1;
        name
    }

    fn block(&mut self, stmts: &[Stmt]) -> Vec<Stmt> {
        let mut out = Vec::with_capacity(stmts.len());
        for s in stmts {
            self.stmt(s, &mut out);
        }
        out
    }

    fn stmt(&mut self, s: &Stmt, out: &mut Vec<Stmt>) {
        match s {
            Stmt::Let(name, e) => {
                let e = self.flatten(e, out);
                out.push(Stmt::Let(name.clone(), e));
            }
            Stmt::Assign(lv, e) => {
                let lv = match lv {
                    LValue::Var(v) => LValue::Var(v.clone()),
                    LValue::Field(base, f) => {
                        let base = self.atomize(base, out);
                        LValue::Field(base, f.clone())
                    }
                    LValue::Index(base, idx) => {
                        let base = self.atomize(base, out);
                        let idx = self.atomize(idx, out);
                        LValue::Index(base, idx)
                    }
                };
                let e = self.flatten(e, out);
                out.push(Stmt::Assign(lv, e));
            }
            Stmt::If(cond, then, els) => {
                let cond = self.flatten(cond, out);
                out.push(Stmt::If(cond, self.block(then), self.block(els)));
            }
            Stmt::While(cond, body) => {
                // while (c) { b }  ⇒  while (true) { if (c) { b } else { break; } }
                // Condition flattening must happen *inside* the loop so it is
                // re-evaluated each iteration.
                let mut inner = Vec::new();
                let cond = self.flatten(cond, &mut inner);
                let body = self.block(body);
                inner.push(Stmt::If(cond, body, vec![Stmt::Break]));
                out.push(Stmt::While(Expr::Lit(Lit::Bool(true)), inner));
            }
            Stmt::Return(Some(e)) => {
                let e = self.flatten(e, out);
                out.push(Stmt::Return(Some(e)));
            }
            Stmt::ExprStmt(e) => {
                let e = self.flatten(e, out);
                out.push(Stmt::ExprStmt(e));
            }
            Stmt::Break | Stmt::Continue | Stmt::Return(None) => out.push(s.clone()),
            // Optimizer-produced blocks never appear pre-simplification;
            // pass through untouched if they do.
            Stmt::DeferBlock { .. } => out.push(s.clone()),
        }
    }

    /// Rewrites `e` into a single-operation expression whose operands are
    /// atoms, emitting temporaries for nested operations.
    fn flatten(&mut self, e: &Expr, out: &mut Vec<Stmt>) -> Expr {
        match e {
            Expr::Lit(_) | Expr::Var(_) => e.clone(),
            Expr::Field(base, f) => {
                let base = self.atomize(base, out);
                Expr::Field(Box::new(base), f.clone())
            }
            Expr::Index(base, idx) => {
                let base = self.atomize(base, out);
                let idx = self.atomize(idx, out);
                Expr::Index(Box::new(base), Box::new(idx))
            }
            Expr::Binary(op, a, b) => {
                // Short-circuit operators keep their right operand nested:
                // hoisting it would change evaluation semantics.
                if matches!(op, BinOp::And | BinOp::Or) {
                    let a = self.atomize(a, out);
                    let mut rhs_stmts = Vec::new();
                    let b = self.flatten(b, &mut rhs_stmts);
                    if rhs_stmts.is_empty() {
                        return Expr::Binary(*op, Box::new(a), Box::new(b));
                    }
                    // Conservative: leave the original nested form.
                    return Expr::Binary(*op, Box::new(a), Box::new(e_sub(b, rhs_stmts)));
                }
                let a = self.atomize(a, out);
                let b = self.atomize(b, out);
                Expr::Binary(*op, Box::new(a), Box::new(b))
            }
            Expr::Unary(op, a) => {
                let a = self.atomize(a, out);
                Expr::Unary(*op, Box::new(a))
            }
            Expr::Call(name, args) => {
                let args = args.iter().map(|a| self.atomize(a, out)).collect();
                Expr::Call(name.clone(), args)
            }
            Expr::NewObject(fields) => {
                let fields = fields
                    .iter()
                    .map(|(f, v)| (f.clone(), self.atomize(v, out)))
                    .collect();
                Expr::NewObject(fields)
            }
            Expr::NewList(items) => {
                let items = items.iter().map(|v| self.atomize(v, out)).collect();
                Expr::NewList(items)
            }
        }
    }

    /// Reduces `e` to an atom (literal or variable), hoisting anything else
    /// into a temporary.
    fn atomize(&mut self, e: &Expr, out: &mut Vec<Stmt>) -> Expr {
        match e {
            Expr::Lit(_) | Expr::Var(_) => e.clone(),
            _ => {
                let flat = self.flatten(e, out);
                let t = self.fresh();
                out.push(Stmt::Let(t.clone(), flat));
                Expr::Var(t)
            }
        }
    }
}

/// Helper for the conservative short-circuit case: no nested-statement
/// expression node exists, so we simply re-nest (the lazy interpreter
/// evaluates nested expressions fine; flattening is an optimization).
fn e_sub(e: Expr, _stmts: Vec<Stmt>) -> Expr {
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_block, parse_program};

    fn simplify_src(src: &str) -> Vec<Stmt> {
        let mut ctx = Ctx { next_temp: 0 };
        ctx.block(&parse_block(src).unwrap())
    }

    #[test]
    fn flattens_compound_arith() {
        // x = a + b + c ⇒ __t0 = a + b; x = __t0 + c (paper's own example).
        let stmts = simplify_src("x = a + b + c;");
        assert_eq!(stmts.len(), 2);
        match &stmts[0] {
            Stmt::Let(t, Expr::Binary(BinOp::Add, _, _)) => assert_eq!(t, "__t0"),
            other => panic!("unexpected {other:?}"),
        }
        match &stmts[1] {
            Stmt::Assign(LValue::Var(x), Expr::Binary(BinOp::Add, l, _)) => {
                assert_eq!(x, "x");
                assert_eq!(**l, Expr::Var("__t0".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn canonicalizes_while() {
        let stmts = simplify_src("while (i < n) { i = i + 1; }");
        match &stmts[0] {
            Stmt::While(Expr::Lit(Lit::Bool(true)), body) => match body.last().unwrap() {
                Stmt::If(_, then, els) => {
                    assert!(!then.is_empty());
                    assert_eq!(els, &vec![Stmt::Break]);
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn loop_condition_reevaluated_each_iteration() {
        // The flattened condition temp must be *inside* the while body.
        let stmts = simplify_src("while (f(i) < n) { i = i + 1; }");
        match &stmts[0] {
            Stmt::While(_, body) => {
                assert!(
                    body.iter()
                        .any(|s| matches!(s, Stmt::Let(t, _) if t.starts_with("__t"))),
                    "condition temp hoisted into loop body"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn call_args_atomized() {
        let stmts = simplify_src("let r = f(a + 1, g(b));");
        // a + 1 and g(b) each get a temp; call has only atoms.
        assert_eq!(stmts.len(), 3);
        match stmts.last().unwrap() {
            Stmt::Let(_, Expr::Call(_, args)) => {
                assert!(args
                    .iter()
                    .all(|a| matches!(a, Expr::Var(_) | Expr::Lit(_))));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn idempotent_on_simple_code() {
        let src = "let x = 1; y = x;";
        let once = simplify_src(src);
        let mut ctx = Ctx { next_temp: 0 };
        let twice = ctx.block(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn program_level() {
        let p = parse_program("fn f(a) { return a + 1 + 2; }").unwrap();
        let s = simplify_program(&p);
        assert!(s.function("f").unwrap().body.len() >= 2);
    }
}
