//! The Sloth compiler's analysis passes (§4.1, §4.2):
//!
//! * **Persistence labelling** — an interprocedural, flow-insensitive
//!   fixpoint marking every function that may touch persistent data. Only
//!   persistent functions are compiled to lazy semantics when selective
//!   compilation is on.
//! * **Purity labelling** — functions with no externally visible effects,
//!   no heap writes, and no queries; calls to pure functions may be
//!   deferred whole.
//! * **Deferrability** — whether a statement subtree can be swallowed into
//!   a thunk block (no queries, no external calls, no heap writes, no
//!   forcing operations, no control escape).

use std::collections::HashSet;

use crate::ast::*;
use crate::builtins::{builtin_is_persistent, builtin_kind, BuiltinKind};

/// Result of analysing a program.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    /// Functions that may access persistent data.
    pub persistent: HashSet<String>,
    /// Functions with no side effects (deferrable as whole calls).
    pub pure_fns: HashSet<String>,
}

impl Analysis {
    /// Whether function `name` is labelled persistent.
    pub fn is_persistent(&self, name: &str) -> bool {
        self.persistent.contains(name)
    }

    /// Whether function `name` is pure.
    pub fn is_pure_fn(&self, name: &str) -> bool {
        self.pure_fns.contains(name)
    }
}

/// Runs all analyses over `p`.
pub fn analyze(p: &Program) -> Analysis {
    Analysis {
        persistent: persistence(p),
        pure_fns: purity(p),
    }
}

/// Every function name called within `stmts`.
fn called_functions(stmts: &[Stmt], out: &mut HashSet<String>) {
    fn expr(e: &Expr, out: &mut HashSet<String>) {
        match e {
            Expr::Call(name, args) => {
                out.insert(name.clone());
                for a in args {
                    expr(a, out);
                }
            }
            Expr::Field(b, _) => expr(b, out),
            Expr::Index(b, i) => {
                expr(b, out);
                expr(i, out);
            }
            Expr::Binary(_, a, b) => {
                expr(a, out);
                expr(b, out);
            }
            Expr::Unary(_, a) => expr(a, out),
            Expr::NewObject(fs) => fs.iter().for_each(|(_, v)| expr(v, out)),
            Expr::NewList(xs) => xs.iter().for_each(|v| expr(v, out)),
            Expr::Lit(_) | Expr::Var(_) => {}
        }
    }
    for s in stmts {
        match s {
            Stmt::Let(_, e) | Stmt::ExprStmt(e) | Stmt::Return(Some(e)) => expr(e, out),
            Stmt::Assign(lv, e) => {
                match lv {
                    LValue::Field(b, _) => expr(b, out),
                    LValue::Index(b, i) => {
                        expr(b, out);
                        expr(i, out);
                    }
                    LValue::Var(_) => {}
                }
                expr(e, out);
            }
            Stmt::If(c, t, e) => {
                expr(c, out);
                called_functions(t, out);
                called_functions(e, out);
            }
            Stmt::While(c, b) => {
                expr(c, out);
                called_functions(b, out);
            }
            Stmt::DeferBlock { body, .. } => called_functions(body, out),
            Stmt::Break | Stmt::Continue | Stmt::Return(None) => {}
        }
    }
}

/// §4.1: fixpoint over the call graph starting from direct query issuers
/// and from functions that touch persistently-stored objects (the paper's
/// third criterion: "accesses object fields that are stored persistently" —
/// approximated here as any heap access, since in these applications every
/// object graph is rooted in ORM entities).
fn persistence(p: &Program) -> HashSet<String> {
    let mut persistent: HashSet<String> = HashSet::new();
    let calls: Vec<(String, HashSet<String>)> = p
        .functions
        .iter()
        .map(|f| {
            let mut c = HashSet::new();
            called_functions(&f.body, &mut c);
            (f.name.clone(), c)
        })
        .collect();
    // Seed: functions calling query builtins directly, or reading heap
    // objects (entity field/collection access).
    for f in &p.functions {
        if stmts_access_heap(&f.body) {
            persistent.insert(f.name.clone());
        }
    }
    for (name, callees) in &calls {
        if callees.iter().any(|c| builtin_is_persistent(c)) {
            persistent.insert(name.clone());
        }
    }
    // Propagate through callers until fixpoint.
    loop {
        let mut changed = false;
        for (name, callees) in &calls {
            if !persistent.contains(name) && callees.iter().any(|c| persistent.contains(c)) {
                persistent.insert(name.clone());
                changed = true;
            }
        }
        if !changed {
            return persistent;
        }
    }
}

/// Whether a statement subtree reads or writes heap objects (field/index
/// access or collection builtins) — the persistence criterion-3 signal.
fn stmts_access_heap(stmts: &[Stmt]) -> bool {
    fn expr_heap(e: &Expr) -> bool {
        match e {
            Expr::Field(..) | Expr::Index(..) => true,
            Expr::Call(name, args) => {
                matches!(builtin_kind(name), Some(BuiltinKind::EagerRead))
                    || args.iter().any(expr_heap)
            }
            Expr::Binary(_, a, b) => expr_heap(a) || expr_heap(b),
            Expr::Unary(_, a) => expr_heap(a),
            Expr::NewObject(fs) => fs.iter().any(|(_, v)| expr_heap(v)),
            Expr::NewList(xs) => xs.iter().any(expr_heap),
            Expr::Lit(_) | Expr::Var(_) => false,
        }
    }
    stmts.iter().any(|s| match s {
        Stmt::Let(_, e) | Stmt::ExprStmt(e) | Stmt::Return(Some(e)) => expr_heap(e),
        Stmt::Assign(LValue::Var(_), e) => expr_heap(e),
        Stmt::Assign(_, _) => true,
        Stmt::If(c, t, e) => expr_heap(c) || stmts_access_heap(t) || stmts_access_heap(e),
        Stmt::While(c, b) => expr_heap(c) || stmts_access_heap(b),
        Stmt::DeferBlock { body, .. } => stmts_access_heap(body),
        Stmt::Break | Stmt::Continue | Stmt::Return(None) => false,
    })
}

/// Whether a statement subtree is effect-free (given the current pure set).
fn stmts_effect_free(stmts: &[Stmt], pure_fns: &HashSet<String>) -> bool {
    fn expr_free(e: &Expr, pure_fns: &HashSet<String>) -> bool {
        match e {
            Expr::Call(name, args) => {
                let callee_ok = match builtin_kind(name) {
                    Some(BuiltinKind::Pure) | Some(BuiltinKind::EagerRead) => true,
                    Some(_) => false,
                    None => pure_fns.contains(name),
                };
                callee_ok && args.iter().all(|a| expr_free(a, pure_fns))
            }
            Expr::Field(b, _) => expr_free(b, pure_fns),
            Expr::Index(b, i) => expr_free(b, pure_fns) && expr_free(i, pure_fns),
            Expr::Binary(_, a, b) => expr_free(a, pure_fns) && expr_free(b, pure_fns),
            Expr::Unary(_, a) => expr_free(a, pure_fns),
            Expr::NewObject(fs) => fs.iter().all(|(_, v)| expr_free(v, pure_fns)),
            Expr::NewList(xs) => xs.iter().all(|v| expr_free(v, pure_fns)),
            Expr::Lit(_) | Expr::Var(_) => true,
        }
    }
    stmts.iter().all(|s| match s {
        Stmt::Let(_, e) | Stmt::ExprStmt(e) | Stmt::Return(Some(e)) => expr_free(e, pure_fns),
        Stmt::Assign(LValue::Var(_), e) => expr_free(e, pure_fns),
        // Heap writes are side effects.
        Stmt::Assign(_, _) => false,
        Stmt::If(c, t, e) => {
            expr_free(c, pure_fns)
                && stmts_effect_free(t, pure_fns)
                && stmts_effect_free(e, pure_fns)
        }
        Stmt::While(c, b) => expr_free(c, pure_fns) && stmts_effect_free(b, pure_fns),
        Stmt::DeferBlock { body, .. } => stmts_effect_free(body, pure_fns),
        Stmt::Break | Stmt::Continue | Stmt::Return(None) => true,
    })
}

/// Purity fixpoint: start optimistic (every user function pure), remove
/// functions whose bodies have effects, repeat.
fn purity(p: &Program) -> HashSet<String> {
    let mut pure: HashSet<String> = p.functions.iter().map(|f| f.name.clone()).collect();
    loop {
        let mut changed = false;
        for f in &p.functions {
            if pure.contains(&f.name) && !stmts_effect_free(&f.body, &pure) {
                pure.remove(&f.name);
                changed = true;
            }
        }
        if !changed {
            return pure;
        }
    }
}

/// §4.2: whether an expression can live inside a deferred block — it must
/// not force anything when eventually evaluated lazily: no queries, no
/// externals, no heap reads (which force their targets at evaluation time).
pub fn expr_deferrable(e: &Expr, a: &Analysis) -> bool {
    match e {
        Expr::Lit(_) | Expr::Var(_) => true,
        // Field/index reads are executed (and force their target) at
        // evaluation time — a block containing them cannot be deferred.
        Expr::Field(..) | Expr::Index(..) => false,
        Expr::Binary(_, x, y) => expr_deferrable(x, a) && expr_deferrable(y, a),
        Expr::Unary(_, x) => expr_deferrable(x, a),
        Expr::Call(name, args) => {
            let callee_ok = match builtin_kind(name) {
                Some(BuiltinKind::Pure) => true,
                Some(_) => false,
                None => a.is_pure_fn(name),
            };
            callee_ok && args.iter().all(|x| expr_deferrable(x, a))
        }
        // Object/list allocation is a heap operation performed eagerly.
        Expr::NewObject(_) | Expr::NewList(_) => false,
    }
}

/// §4.2: whether a statement subtree can be swallowed into a single thunk:
/// only local-variable effects, no control escape, everything deferrable.
pub fn stmt_deferrable(s: &Stmt, a: &Analysis) -> bool {
    match s {
        Stmt::Let(_, e) => expr_deferrable(e, a),
        Stmt::Assign(LValue::Var(_), e) => expr_deferrable(e, a),
        Stmt::Assign(_, _) => false,
        Stmt::ExprStmt(e) => expr_deferrable(e, a),
        Stmt::If(c, t, els) => {
            expr_deferrable(c, a)
                && t.iter().all(|s| stmt_deferrable(s, a))
                && els.iter().all(|s| stmt_deferrable(s, a))
        }
        // Loops inside a deferred block: body must be deferrable; the
        // canonical `while(true){ if .. else break }` form contains Break,
        // which we allow only directly inside a deferred loop's own body.
        Stmt::While(c, b) => expr_deferrable(c, a) && loop_body_deferrable(b, a),
        Stmt::DeferBlock { body, .. } => body.iter().all(|s| stmt_deferrable(s, a)),
        Stmt::Break | Stmt::Continue | Stmt::Return(_) => false,
    }
}

/// Like [`stmt_deferrable`] but tolerates `break`/`continue` that target
/// the loop being deferred.
fn loop_body_deferrable(stmts: &[Stmt], a: &Analysis) -> bool {
    stmts.iter().all(|s| match s {
        Stmt::Break | Stmt::Continue => true,
        Stmt::If(c, t, e) => {
            expr_deferrable(c, a) && loop_body_deferrable(t, a) && loop_body_deferrable(e, a)
        }
        other => stmt_deferrable(other, a),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn program() -> Program {
        parse_program(
            r#"
            fn get_patient(id) { return orm_find("patient", id); }
            fn controller(id) {
                let p = get_patient(id);
                return p;
            }
            fn format_name(first, last) { return concat(first, last); }
            fn helper_chain(a) { return format_name(a, a); }
            fn print_it(x) { print(x); }
            fn mutate(xs) { push(xs, 1); }
            "#,
        )
        .unwrap()
    }

    #[test]
    fn persistence_propagates_through_callers() {
        let a = analyze(&program());
        assert!(a.is_persistent("get_patient"));
        assert!(a.is_persistent("controller"), "transitively persistent");
        assert!(!a.is_persistent("format_name"));
        assert!(!a.is_persistent("helper_chain"));
        assert!(!a.is_persistent("print_it"));
    }

    #[test]
    fn purity_detects_effects() {
        let a = analyze(&program());
        assert!(a.is_pure_fn("format_name"));
        assert!(a.is_pure_fn("helper_chain"));
        assert!(!a.is_pure_fn("print_it"), "print is external");
        assert!(!a.is_pure_fn("mutate"), "push writes the heap");
        assert!(!a.is_pure_fn("get_patient"), "queries are effects");
    }

    #[test]
    fn purity_fixpoint_handles_recursion() {
        let p = parse_program(
            r#"
            fn even(n) { if (n == 0) { return true; } return odd(n - 1); }
            fn odd(n) { if (n == 0) { return false; } return even(n - 1); }
            "#,
        )
        .unwrap();
        let a = analyze(&p);
        assert!(a.is_pure_fn("even") && a.is_pure_fn("odd"));
    }

    #[test]
    fn deferrable_branch_paper_example() {
        // if (c) a = b; else a = d;  — deferrable (§4.2's own example).
        let p = parse_program(
            "fn f(c, b, d) { let a = 0; if (c) { a = b; } else { a = d; } return a; }",
        )
        .unwrap();
        let a = analyze(&p);
        match &p.function("f").unwrap().body[1] {
            s @ Stmt::If(..) => assert!(stmt_deferrable(s, &a)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn branch_with_query_not_deferrable() {
        let p = parse_program(
            r#"fn f(c) { let a = 0; if (c) { a = query("SELECT 1 FROM t"); } return a; }"#,
        )
        .unwrap();
        let a = analyze(&p);
        match &p.function("f").unwrap().body[1] {
            s @ Stmt::If(..) => assert!(!stmt_deferrable(s, &a)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn branch_with_heap_write_not_deferrable() {
        let p = parse_program("fn f(c, m) { if (c) { m.x = 1; } }").unwrap();
        let a = analyze(&p);
        match &p.function("f").unwrap().body[0] {
            s @ Stmt::If(..) => assert!(!stmt_deferrable(s, &a)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn branch_with_pure_call_deferrable() {
        // The paper's filter example: a pure call inside the branch.
        let p = parse_program(
            "fn flt(v) { return v; } fn f(c, v) { let a = 0; if (c) { a = flt(v); } return a; }",
        )
        .unwrap();
        let a = analyze(&p);
        match &p.function("f").unwrap().body[1] {
            s @ Stmt::If(..) => assert!(stmt_deferrable(s, &a)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn branch_with_return_not_deferrable() {
        let p = parse_program("fn f(c) { if (c) { return 1; } return 2; }").unwrap();
        let a = analyze(&p);
        match &p.function("f").unwrap().body[0] {
            s @ Stmt::If(..) => assert!(!stmt_deferrable(s, &a)),
            other => panic!("unexpected {other:?}"),
        }
    }
}
