//! Shared runtime plumbing for the interpreters: the data-access layer
//! (ORM + raw SQL against the simulated deployment), execution counters,
//! and the cost model that converts counters into application-server time.

use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

use sloth_core::{QueryId, QueryStore, Registration, StoreStats};
use sloth_net::{Dispatcher, NetStats, SimEnv};
use sloth_orm::{sqlgen, AssocKind, Schema};
use sloth_sql::{ResultSet, SqlError};

use crate::value::V;

/// Per-operation application-server costs (nanoseconds).
///
/// One kernel-language statement stands for on the order of a thousand JVM
/// bytecodes of the real applications (Spring/Hibernate internals, JSP
/// rendering), so these constants are calibrated at that granularity:
/// they reproduce the paper's Fig. 8 time breakdown (app-server time a
/// 30–40 % share), the Fig. 12 noopt-vs-optimized gap (>2x), and the
/// Fig. 13 lazy overhead band (5–16 %).
pub mod cost {
    /// One interpreter operation under standard semantics.
    pub const STD_OP_NS: u64 = 550;
    /// One interpreter operation under lazy semantics (bookkeeping).
    pub const LAZY_OP_NS: u64 = 800;
    /// Allocating one thunk object.
    pub const THUNK_ALLOC_NS: u64 = 2_600;
    /// Forcing one pending thunk (dispatch + memoization write).
    pub const FORCE_NS: u64 = 1_100;
    /// Registering one query with the query store.
    pub const QUERY_REG_NS: u64 = 6_000;
}

/// Execution counters; converted to time by [`Counters::app_ns`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Operations executed under standard semantics.
    pub std_ops: u64,
    /// Operations executed under lazy semantics.
    pub lazy_ops: u64,
    /// Thunks allocated.
    pub thunk_allocs: u64,
    /// Thunks forced (pending → done transitions).
    pub forces: u64,
    /// Queries registered with the query store.
    pub queries_registered: u64,
}

impl Counters {
    /// Application-server time implied by these counters.
    pub fn app_ns(&self) -> u64 {
        self.std_ops * cost::STD_OP_NS
            + self.lazy_ops * cost::LAZY_OP_NS
            + self.thunk_allocs * cost::THUNK_ALLOC_NS
            + self.forces * cost::FORCE_NS
            + self.queries_registered * cost::QUERY_REG_NS
    }
}

/// Error during interpretation (SQL errors, type errors, missing vars…).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunError {
    /// Human-readable message.
    pub message: String,
}

impl RunError {
    /// Creates an error.
    pub fn new(m: impl Into<String>) -> Self {
        RunError { message: m.into() }
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "run error: {}", self.message)
    }
}

impl std::error::Error for RunError {}

impl From<SqlError> for RunError {
    fn from(e: SqlError) -> Self {
        RunError::new(e.to_string())
    }
}

impl From<crate::parser::ParseError> for RunError {
    fn from(e: crate::parser::ParseError) -> Self {
        RunError::new(e.to_string())
    }
}

/// Result of running a program.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Everything printed/rendered, in order.
    pub output: Vec<String>,
    /// Displayed return value of `main`, if any.
    pub returned: Option<String>,
    /// Execution counters.
    pub counters: Counters,
    /// Network/DB statistics accumulated during the run (delta).
    pub net: NetStats,
    /// Query-store statistics (lazy runs only).
    pub store: Option<StoreStats>,
}

impl RunResult {
    /// Total simulated latency of the run.
    pub fn total_ns(&self) -> u64 {
        self.net.total_ns()
    }

    /// Total simulated latency in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_ns() as f64 / 1e6
    }
}

/// Data-access layer shared by both interpreters: raw SQL plus ORM-style
/// entity fetches, in either immediate (original) or deferred (Sloth) mode.
#[derive(Clone)]
pub struct DataLayer {
    /// The simulated deployment.
    pub env: SimEnv,
    /// Entity metadata.
    pub schema: Arc<Schema>,
    /// Present in Sloth mode: the per-request query store.
    pub store: Option<QueryStore>,
}

impl DataLayer {
    /// Immediate (original application) data layer.
    pub fn immediate(env: SimEnv, schema: Arc<Schema>) -> Self {
        DataLayer {
            env,
            schema,
            store: None,
        }
    }

    /// Deferred (Sloth) data layer with a fresh query store.
    pub fn deferred(env: SimEnv, schema: Arc<Schema>) -> Self {
        let store = QueryStore::new(env.clone());
        DataLayer {
            env,
            schema,
            store: Some(store),
        }
    }

    /// Deferred (Sloth) data layer whose query store flushes through a
    /// shared [`Dispatcher`] — the multi-session serving path: this
    /// session's batches may coalesce with other sessions' batches into
    /// one backend round trip.
    pub fn dispatched(dispatcher: Arc<Dispatcher>, schema: Arc<Schema>) -> Self {
        let env = dispatcher.env().clone();
        DataLayer {
            env,
            schema,
            store: Some(QueryStore::dispatched(dispatcher)),
        }
    }

    /// The query store (panics if in immediate mode — interpreter bug).
    pub fn store(&self) -> &QueryStore {
        self.store.as_ref().expect("deferred data layer required")
    }

    /// Executes a statement immediately (one round trip).
    pub fn read_now(&self, sql: &str) -> Result<ResultSet, RunError> {
        Ok(self.env.query(sql)?)
    }

    /// Registers a read with the store (Sloth mode).
    pub fn register(&self, sql: &str) -> Result<QueryId, RunError> {
        Ok(self.store().register(sql.to_string())?)
    }

    /// Registers a write with the store, reporting whether it was
    /// deferred (selective laziness) — deferred writes must not have
    /// their empty result demanded, or the deferral is undone.
    pub fn register_write(&self, sql: &str) -> Result<Registration, RunError> {
        Ok(self.store().register_stmt(sql.to_string())?)
    }

    /// Fetches a registered result (ships the batch if needed).
    pub fn fetch(&self, id: QueryId) -> Result<ResultSet, RunError> {
        Ok(self.store().result(id)?)
    }

    /// Builds the SQL for an association access and reports whether it
    /// returns a collection (`true`) or a single entity (`false`).
    pub fn assoc_sql(
        &self,
        entity: &str,
        assoc: &str,
        key: &sloth_sql::Value,
    ) -> Result<(String, String, bool), RunError> {
        let def = self
            .schema
            .entity(entity)
            .ok_or_else(|| RunError::new(format!("unknown entity {entity}")))?;
        let a = def
            .assoc(assoc)
            .ok_or_else(|| RunError::new(format!("no assoc {assoc} on {entity}")))?;
        let target = self
            .schema
            .entity(&a.target)
            .ok_or_else(|| RunError::new(format!("unknown entity {}", a.target)))?;
        let many = matches!(a.kind, AssocKind::OneToMany { .. });
        Ok((sqlgen::select_assoc(a, target, key), a.target.clone(), many))
    }
}

/// Converts a result-set row into an entity object value (fields by column
/// name plus the hidden `__entity` tag).
pub fn row_to_entity(entity: &str, rs: &ResultSet, row: usize) -> V {
    let mut fields = BTreeMap::new();
    fields.insert("__entity".to_string(), V::str(entity));
    for (ci, col) in rs.columns.iter().enumerate() {
        fields.insert(col.clone(), V::from_sql(&rs.rows[row][ci]));
    }
    V::Obj(Rc::new(std::cell::RefCell::new(fields)))
}

/// Converts a whole result set into a list of entity objects.
pub fn rs_to_entities(entity: &str, rs: &ResultSet) -> V {
    let items = (0..rs.len())
        .map(|i| row_to_entity(entity, rs, i))
        .collect();
    V::list(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_cost_model_monotone() {
        let a = Counters {
            std_ops: 10,
            ..Default::default()
        };
        let b = Counters {
            std_ops: 10,
            thunk_allocs: 5,
            ..Default::default()
        };
        assert!(b.app_ns() > a.app_ns());
        assert_eq!(a.app_ns(), 10 * cost::STD_OP_NS);
    }

    #[test]
    fn row_to_entity_tags() {
        let rs = ResultSet::new(
            vec!["id".into(), "name".into()],
            vec![vec![
                sloth_sql::Value::Int(1),
                sloth_sql::Value::Str("x".into()),
            ]],
        );
        let e = row_to_entity("patient", &rs, 0);
        match e {
            V::Obj(o) => {
                let o = o.borrow();
                assert_eq!(o.get("__entity").unwrap().display_shallow(), "patient");
                assert_eq!(o.get("id").unwrap().display_shallow(), "1");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
