//! The optimizer (§4): branch deferral and thunk coalescing, implemented as
//! AST transforms that wrap deferrable regions in [`Stmt::DeferBlock`].
//! Selective compilation (§4.1) and the buffered thunk writer (§5) are
//! runtime flags consumed by the lazy interpreter.

use std::collections::HashMap;

use sloth_orm::Schema;

use crate::analysis::{stmt_deferrable, Analysis};
use crate::ast::*;
use crate::writedefer::{self, WdCtx};

/// Optimization switches (Fig. 12 turns these on cumulatively).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptFlags {
    /// §4.1 selective compilation: non-persistent functions run under
    /// standard semantics.
    pub selective: bool,
    /// §4.3 thunk coalescing: merge consecutive deferrable statements.
    pub coalesce: bool,
    /// §4.2 branch deferral: defer whole `if`/loop statements.
    pub defer_branches: bool,
    /// §5 JSP extension: output written through a buffering thunk writer,
    /// flushed once at the end of the request.
    pub buffered_writer: bool,
}

impl OptFlags {
    /// Everything on (the configuration the headline results use).
    pub fn all() -> Self {
        OptFlags {
            selective: true,
            coalesce: true,
            defer_branches: true,
            buffered_writer: true,
        }
    }

    /// Everything off (the `noopt` bar of Fig. 12; buffering stays on since
    /// the paper's Fig. 12 varies only SC/TC/BD).
    pub fn none() -> Self {
        OptFlags {
            selective: false,
            coalesce: false,
            defer_branches: false,
            buffered_writer: true,
        }
    }
}

impl Default for OptFlags {
    fn default() -> Self {
        OptFlags::all()
    }
}

/// Applies the AST-level optimizations (BD, TC) to a (simplified) program.
pub fn optimize(p: &Program, a: &Analysis, flags: OptFlags) -> Program {
    optimize_with_schema(p, a, flags, None)
}

/// [`optimize`] with ORM schema metadata: entity names resolve to their
/// backing tables, so **branch deferral across writes** (§3.5 + §4.2)
/// can bound `orm_save`/`orm_update`/`orm_delete` calls too. Without a
/// schema only raw `exec`/`query` SQL is statically traceable.
pub fn optimize_with_schema(
    p: &Program,
    a: &Analysis,
    flags: OptFlags,
    schema: Option<&Schema>,
) -> Program {
    if !flags.coalesce && !flags.defer_branches {
        return p.clone();
    }
    Program {
        functions: p
            .functions
            .iter()
            .map(|f| {
                let mut occurrences = HashMap::new();
                count_occurrences(&f.body, &mut occurrences);
                for p in &f.params {
                    *occurrences.entry(p.clone()).or_insert(0) += 1;
                }
                // BD-across-writes is restricted to the request entry
                // point: its tail analysis covers "everything issued
                // after the branch until the request ends", which is
                // only closed-form for `main` (a branch inside a helper
                // could be followed by arbitrary caller code).
                let wd = (flags.defer_branches && f.name == "main").then_some(WdCtx {
                    analysis: a,
                    schema,
                });
                let body = transform_block(&f.body, a, flags, &occurrences, wd.as_ref(), &[]);
                Function {
                    name: f.name.clone(),
                    params: f.params.clone(),
                    body,
                }
            })
            .collect(),
    }
}

/// Counts every occurrence of each variable name in a statement subtree
/// (reads, assignment targets, `let` bindings, block outputs). Public so
/// the lazy interpreter can compute capture sets for deferred blocks.
pub fn count_occurrences_pub(stmts: &[Stmt], out: &mut HashMap<String, usize>) {
    count_occurrences(stmts, out)
}

fn count_occurrences(stmts: &[Stmt], out: &mut HashMap<String, usize>) {
    fn expr(e: &Expr, out: &mut HashMap<String, usize>) {
        let mut vars = Vec::new();
        expr_vars(e, &mut vars);
        for v in vars {
            *out.entry(v).or_insert(0) += 1;
        }
    }
    for s in stmts {
        match s {
            Stmt::Let(name, e) => {
                *out.entry(name.clone()).or_insert(0) += 1;
                expr(e, out);
            }
            Stmt::Assign(lv, e) => {
                match lv {
                    LValue::Var(v) => *out.entry(v.clone()).or_insert(0) += 1,
                    LValue::Field(b, _) => expr(b, out),
                    LValue::Index(b, i) => {
                        expr(b, out);
                        expr(i, out);
                    }
                }
                expr(e, out);
            }
            Stmt::If(c, t, e) => {
                expr(c, out);
                count_occurrences(t, out);
                count_occurrences(e, out);
            }
            Stmt::While(c, b) => {
                expr(c, out);
                count_occurrences(b, out);
            }
            Stmt::Return(Some(e)) | Stmt::ExprStmt(e) => expr(e, out),
            // Outputs are not counted: every output is also an assignment
            // inside `body` (already counted), and counting them twice
            // would make post-transform "local" counts exceed the
            // pre-transform totals, dropping live outputs.
            Stmt::DeferBlock { body, .. } => count_occurrences(body, out),
            Stmt::Break | Stmt::Continue | Stmt::Return(None) => {}
        }
    }
}

fn transform_block<'a>(
    stmts: &'a [Stmt],
    a: &Analysis,
    flags: OptFlags,
    occurrences: &HashMap<String, usize>,
    wd: Option<&WdCtx<'_>>,
    tail: &[&'a [Stmt]],
) -> Vec<Stmt> {
    // Recurse first, then wrap at this level. Each nested block's tail
    // context is "everything after its statement here" plus this block's
    // own tail; a loop body's tail additionally includes the body itself
    // (iteration wrap-around — one unrolling suffices, footprints being
    // sets).
    let mut rewritten: Vec<Stmt> = stmts
        .iter()
        .enumerate()
        .map(|(i, s)| match s {
            Stmt::If(c, t, e) => {
                let mut child_tail: Vec<&'a [Stmt]> = Vec::with_capacity(tail.len() + 1);
                child_tail.push(&stmts[i + 1..]);
                child_tail.extend_from_slice(tail);
                Stmt::If(
                    c.clone(),
                    transform_block(t, a, flags, occurrences, wd, &child_tail),
                    transform_block(e, a, flags, occurrences, wd, &child_tail),
                )
            }
            Stmt::While(c, b) => {
                let mut child_tail: Vec<&'a [Stmt]> = Vec::with_capacity(tail.len() + 2);
                child_tail.push(&b[..]);
                child_tail.push(&stmts[i + 1..]);
                child_tail.extend_from_slice(tail);
                Stmt::While(
                    c.clone(),
                    transform_block(b, a, flags, occurrences, wd, &child_tail),
                )
            }
            other => other.clone(),
        })
        .collect();

    if flags.defer_branches {
        rewritten = rewritten
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                if !matches!(s, Stmt::If(..) | Stmt::While(..)) {
                    return s;
                }
                // Defer whole branches/loops with only local effects (the
                // plain §4.2 path: the rewritten shape is equivalent for
                // the check — nested DeferBlocks are checked by body).
                if stmt_deferrable(&s, a) {
                    let outputs = block_outputs(std::slice::from_ref(&s));
                    return Stmt::DeferBlock {
                        body: vec![s],
                        outputs,
                        effectful: false,
                    };
                }
                // BD across writes (§3.5): a branch issuing statically
                // bounded writes stays deferred when its write footprint
                // is disjoint from every database access issued after it
                // (this block's tail + enclosing tails + loop bodies).
                if let Some(ctx) = wd {
                    if let Some(wfp) = writedefer::write_branch_footprint(&s, ctx) {
                        let mut regions: Vec<&[Stmt]> = Vec::with_capacity(tail.len() + 1);
                        regions.push(&stmts[i + 1..]);
                        regions.extend_from_slice(tail);
                        let disjoint = writedefer::tail_footprint(&regions, ctx)
                            .is_some_and(|tfp| !wfp.conflicts_with(&tfp));
                        if disjoint {
                            let outputs = block_outputs(std::slice::from_ref(&s));
                            return Stmt::DeferBlock {
                                body: vec![s],
                                outputs,
                                effectful: true,
                            };
                        }
                    }
                }
                s
            })
            .collect();
    }

    if flags.coalesce {
        rewritten = coalesce_runs(rewritten, a, occurrences);
    }
    rewritten
}

/// Output variables of a deferred region: variables assigned inside that
/// were not declared inside.
fn block_outputs(stmts: &[Stmt]) -> Vec<String> {
    let mut assigned = Vec::new();
    assigned_vars(stmts, &mut assigned);
    let mut declared = Vec::new();
    collect_lets(stmts, &mut declared);
    assigned.retain(|v| !declared.contains(v));
    assigned
}

fn collect_lets(stmts: &[Stmt], out: &mut Vec<String>) {
    for s in stmts {
        match s {
            Stmt::Let(name, _) => out.push(name.clone()),
            Stmt::If(_, t, e) => {
                collect_lets(t, out);
                collect_lets(e, out);
            }
            Stmt::While(_, b) => collect_lets(b, out),
            Stmt::DeferBlock { body, .. } => collect_lets(body, out),
            _ => {}
        }
    }
}

/// §4.3: groups maximal runs (≥ 2) of consecutive deferrable statements
/// into a single [`Stmt::DeferBlock`]; nested defer blocks are spliced in.
fn coalesce_runs(
    stmts: Vec<Stmt>,
    a: &Analysis,
    occurrences: &HashMap<String, usize>,
) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len());
    let mut run: Vec<Stmt> = Vec::new();

    let flush = |run: &mut Vec<Stmt>, out: &mut Vec<Stmt>| {
        if run.len() >= 2 {
            // Splice nested defer blocks: the whole run is one thunk
            // anyway. A run absorbing an effectful block stays effectful.
            let mut body = Vec::new();
            let mut effectful = false;
            for s in run.drain(..) {
                match s {
                    Stmt::DeferBlock {
                        body: inner,
                        effectful: ef,
                        ..
                    } => {
                        body.extend(inner);
                        effectful |= ef;
                    }
                    other => body.push(other),
                }
            }
            let outputs = run_outputs(&body, occurrences);
            out.push(Stmt::DeferBlock {
                body,
                outputs,
                effectful,
            });
        } else {
            out.append(run);
        }
    };

    for s in stmts {
        if coalescable(&s, a) {
            run.push(s);
        } else {
            flush(&mut run, &mut out);
            out.push(s);
        }
    }
    flush(&mut run, &mut out);
    out
}

/// TC only merges *simple* statements (and blocks already deferred by BD);
/// swallowing whole branches is branch deferral's job (§4.2), so keeping
/// them apart lets Fig. 12 measure the two independently.
fn coalescable(s: &Stmt, a: &Analysis) -> bool {
    match s {
        Stmt::Let(..) | Stmt::Assign(LValue::Var(_), _) | Stmt::ExprStmt(_) => {
            stmt_deferrable(s, a)
        }
        Stmt::DeferBlock { .. } => true,
        _ => false,
    }
}

/// Outputs of a coalesced run: names defined or assigned in the run that
/// also occur elsewhere in the function (the §4.3 liveness criterion —
/// "used anywhere else" is a sound over-approximation of live-after).
fn run_outputs(body: &[Stmt], occurrences: &HashMap<String, usize>) -> Vec<String> {
    let mut defined = Vec::new();
    collect_lets(body, &mut defined);
    assigned_vars(body, &mut defined);
    let mut inside = HashMap::new();
    count_occurrences(body, &mut inside);
    let mut outputs: Vec<String> = defined
        .into_iter()
        .filter(|v| {
            let total = occurrences.get(v).copied().unwrap_or(0);
            let local = inside.get(v).copied().unwrap_or(0);
            total > local
        })
        .collect();
    outputs.dedup();
    outputs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::parser::parse_program;
    use crate::simplify::simplify_program;

    fn pipeline(src: &str, flags: OptFlags) -> Program {
        let p = simplify_program(&parse_program(src).unwrap());
        let a = analyze(&p);
        optimize(&p, &a, flags)
    }

    #[test]
    fn coalesce_paper_example() {
        // foo(a,b,c,d): e = a+b; f = e+c; g = f+d; return g — the three
        // additions must coalesce into one block with g as only output.
        let p = pipeline(
            "fn foo(a, b, c, d) { let e = a + b; let f = e + c; let g = f + d; return g; }",
            OptFlags {
                coalesce: true,
                defer_branches: false,
                ..OptFlags::all()
            },
        );
        let body = &p.function("foo").unwrap().body;
        match &body[0] {
            Stmt::DeferBlock {
                body: inner,
                outputs,
                ..
            } => {
                assert_eq!(inner.len(), 3);
                assert_eq!(outputs, &vec!["g".to_string()]);
            }
            other => panic!("expected DeferBlock, got {other:?}"),
        }
        assert!(matches!(body[1], Stmt::Return(_)));
    }

    #[test]
    fn branch_deferral_wraps_pure_if() {
        let p = pipeline(
            "fn f(c, b, d) { let a = 0; if (c) { a = b; } else { a = d; } print(a); }",
            OptFlags {
                coalesce: false,
                defer_branches: true,
                ..OptFlags::all()
            },
        );
        let body = &p.function("f").unwrap().body;
        let found = body.iter().any(|s| {
            matches!(s, Stmt::DeferBlock { body, outputs, .. }
                if matches!(body[0], Stmt::If(..)) && outputs.contains(&"a".to_string()))
        });
        assert!(found, "if should be wrapped: {body:?}");
    }

    #[test]
    fn query_branch_not_wrapped() {
        let p = pipeline(
            r#"fn f(c) { let a = 0; if (c) { a = query("SELECT 1 FROM t"); } print(a); }"#,
            OptFlags::all(),
        );
        let body = &p.function("f").unwrap().body;
        let wrapped_if = body.iter().any(|s| {
            matches!(s, Stmt::DeferBlock { body, .. } if body.iter().any(|x| matches!(x, Stmt::If(..))))
        });
        assert!(!wrapped_if, "query-issuing branch must not defer: {body:?}");
    }

    #[test]
    fn bd_blocks_absorbed_by_tc() {
        let p = pipeline(
            "fn f(c, b, d) { let a = 0; if (c) { a = b; } else { a = d; } let z = a + 1; return z; }",
            OptFlags::all(),
        );
        let body = &p.function("f").unwrap().body;
        // let a, the deferred if and let z all coalesce into one block.
        match &body[0] {
            Stmt::DeferBlock {
                body: inner,
                outputs,
                ..
            } => {
                assert!(inner.iter().any(|s| matches!(s, Stmt::If(..))));
                assert!(outputs.contains(&"z".to_string()));
            }
            other => panic!("expected one big DeferBlock, got {other:?}"),
        }
    }

    #[test]
    fn no_flags_is_identity() {
        let src = "fn f(a) { let x = a + 1; let y = x + 2; return y; }";
        let p = simplify_program(&parse_program(src).unwrap());
        let a = analyze(&p);
        let o = optimize(&p, &a, OptFlags::none());
        assert_eq!(p, o);
    }

    #[test]
    fn temporaries_not_exported() {
        // __t* temps used only inside the run must not become outputs.
        let p = pipeline(
            "fn f(a) { let x = a + 1 + 2 + 3; return x; }",
            OptFlags {
                defer_branches: false,
                ..OptFlags::all()
            },
        );
        let body = &p.function("f").unwrap().body;
        match &body[0] {
            Stmt::DeferBlock { outputs, .. } => {
                assert_eq!(outputs, &vec!["x".to_string()]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
