//! Branch deferral **across writes** (§3.5 + §4.2): the static legality
//! analysis that lets `opt::defer_branches` keep a branch containing
//! write calls deferred.
//!
//! The paper's selective-laziness argument: deferring a write is invisible
//! exactly when nothing observes its effects before it executes. For a
//! *deferred branch* the write executes when the block is forced — at the
//! latest at end of request — so the branch may stay deferred only when
//! its **write footprint** (computed here, at compile time, with
//! [`sloth_sql::Footprint`] over the statically known parts of the ORM/SQL
//! templates) is disjoint from **every database access issued after the
//! branch** for the rest of the entry function. That is a superset of
//! "every read between the branch and its next force", so the transform
//! is sound no matter when the block actually forces.
//!
//! Conservative throughout:
//!
//! * write calls whose SQL is not statically traceable (no literal prefix
//!   naming the table) make the branch non-deferrable;
//! * read-query calls inside the branch make it non-deferrable (they
//!   would execute as solo round trips at force time);
//! * transaction boundaries anywhere (inside the branch or after it)
//!   block deferral — a deferred write must not slide out of its
//!   transaction;
//! * any tail statement whose database access cannot be bounded (dynamic
//!   SQL with no usable prefix, `orm_assoc` on an unknown entity, a call
//!   to a persistent user function) conflicts with everything.
//!
//! Statically derived footprints are **over-approximations** (whole-table
//! accesses when key pins are not literal), so a "disjoint" verdict here
//! implies runtime disjointness; the runtime's own footprint checks in the
//! query store still apply when the deferred block finally registers its
//! writes.

use std::collections::HashMap;

use sloth_orm::Schema;
use sloth_sql::{Footprint, TableAccess, Value};

use crate::analysis::{expr_deferrable, Analysis};
use crate::ast::*;
use crate::builtins::{builtin_kind, BuiltinKind};

/// What the analysis statically knows about a string-valued expression.
#[derive(Debug, Clone)]
enum SStr {
    /// The whole string is known.
    Full(String),
    /// A known prefix followed by dynamic parts (the ORM-page idiom
    /// `"UPDATE t SET c = " + str(v)`).
    Prefix(String),
    /// Nothing usable.
    Unknown,
}

impl SStr {
    fn concat(self, rhs: SStr) -> SStr {
        match (self, rhs) {
            (SStr::Full(a), SStr::Full(b)) => SStr::Full(a + &b),
            (SStr::Full(a), SStr::Prefix(b)) => SStr::Prefix(a + &b),
            (SStr::Full(a), SStr::Unknown) => SStr::Prefix(a),
            (SStr::Prefix(a), _) => SStr::Prefix(a),
            (SStr::Unknown, _) => SStr::Unknown,
        }
    }
}

/// Static-string environment: local variables (mostly `__t` temporaries
/// from the simplify pass) whose string value is at least partially known.
type SEnv = HashMap<String, SStr>;

fn static_str(e: &Expr, env: &SEnv) -> SStr {
    match e {
        Expr::Lit(Lit::Str(s)) => SStr::Full(s.clone()),
        Expr::Lit(Lit::Int(i)) => SStr::Full(i.to_string()),
        Expr::Var(v) => env.get(v).cloned().unwrap_or(SStr::Unknown),
        Expr::Binary(BinOp::Add, a, b) => static_str(a, env).concat(static_str(b, env)),
        // str() of anything is *some* string — dynamic, but it does not
        // poison a preceding literal prefix.
        Expr::Call(name, _) if name == "str" => SStr::Unknown,
        _ => SStr::Unknown,
    }
}

/// Records an assignment into the static-string environment.
fn record_def(name: &str, e: &Expr, env: &mut SEnv) {
    let v = static_str(e, env);
    env.insert(name.to_string(), v);
}

/// Splits a SQL fragment into bare words (identifiers / keywords).
fn words(s: &str) -> Vec<String> {
    s.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .filter(|w| !w.is_empty())
        .map(|w| w.to_ascii_lowercase())
        .collect()
}

fn whole_write(table: &str) -> Footprint {
    Footprint {
        reads: Vec::new(),
        writes: vec![TableAccess {
            table: table.to_string(),
            keys: Vec::new(),
        }],
        barrier: false,
    }
}

fn whole_read(tables: &[String]) -> Footprint {
    Footprint {
        reads: tables
            .iter()
            .map(|t| TableAccess {
                table: t.clone(),
                keys: Vec::new(),
            })
            .collect(),
        writes: Vec::new(),
        barrier: false,
    }
}

/// Table-level footprint of a **write** statement's literal prefix. The
/// table name precedes the first dynamic fragment in every supported
/// shape, and the engine's grammar admits no second statement, so a
/// whole-table access on the named table over-approximates whatever the
/// completed statement can touch (statements that fail to parse at
/// runtime error without touching anything).
fn prefix_write_footprint(prefix: &str) -> Option<Footprint> {
    let w = words(prefix);
    match w.first().map(String::as_str) {
        // `UPDATE <table> SET …` — require SET so the table is complete.
        Some("update") if w.len() >= 3 && w.iter().any(|x| x == "set") => Some(whole_write(&w[1])),
        // `DELETE FROM <table> WHERE …` — require WHERE (a full-literal
        // DELETE goes through `Footprint::of_sql` instead).
        Some("delete") if w.len() >= 4 && w[1] == "from" && w.iter().any(|x| x == "where") => {
            Some(whole_write(&w[2]))
        }
        // `INSERT INTO <table> … VALUES …` — require VALUES.
        Some("insert") if w.len() >= 4 && w[1] == "into" && w.iter().any(|x| x == "values") => {
            Some(whole_write(&w[2]))
        }
        _ => None,
    }
}

/// Table-level footprint of a **read** statement's literal prefix. Sound
/// for the supported grammar only when the prefix reaches `WHERE`: every
/// `FROM`/`JOIN` table reference precedes it, so the table set is closed.
fn prefix_read_footprint(prefix: &str) -> Option<Footprint> {
    let w = words(prefix);
    if w.first().map(String::as_str) != Some("select") || !w.iter().any(|x| x == "where") {
        return None;
    }
    let mut tables = Vec::new();
    for (i, word) in w.iter().enumerate() {
        if (word == "from" || word == "join") && i + 1 < w.len() {
            let t = &w[i + 1];
            if t == "where" {
                return None;
            }
            tables.push(t.clone());
        }
    }
    if tables.is_empty() {
        return None;
    }
    Some(whole_read(&tables))
}

/// Footprint of a statically (partially) known SQL string. `None` means
/// "cannot bound it".
fn sql_footprint(s: &SStr, is_write: bool) -> Option<Footprint> {
    match s {
        SStr::Full(sql) => {
            let fp = Footprint::of_sql(sql);
            (!fp.barrier).then_some(fp)
        }
        SStr::Prefix(p) => {
            if is_write {
                prefix_write_footprint(p)
            } else {
                prefix_read_footprint(p)
            }
        }
        SStr::Unknown => None,
    }
}

/// Entity-literal argument of an ORM call, if statically known.
fn entity_arg(args: &[Expr]) -> Option<&str> {
    match args.first() {
        Some(Expr::Lit(Lit::Str(s))) => Some(s),
        _ => None,
    }
}

/// Table backing an entity: via the schema when one was provided to the
/// optimizer; without a schema ORM calls are unanalyzable (entity and
/// table names need not coincide).
fn entity_table(entity: &str, schema: Option<&Schema>) -> Option<String> {
    schema
        .and_then(|s| s.entity(entity))
        .map(|def| def.table.to_ascii_lowercase())
}

/// Footprint of one builtin query call, or `None` when it cannot be
/// bounded. `env` resolves the simplify pass's string temporaries.
fn call_footprint(
    name: &str,
    args: &[Expr],
    env: &SEnv,
    schema: Option<&Schema>,
) -> Option<Footprint> {
    match name {
        "exec" => sql_footprint(&static_str(args.first()?, env), true),
        "query" => sql_footprint(&static_str(args.first()?, env), false),
        // Transaction boundaries are barriers: never bounded.
        "begin" | "commit" | "rollback" => None,
        "orm_save" | "orm_delete" => {
            entity_table(entity_arg(args)?, schema).map(|t| whole_write(&t))
        }
        "orm_update" => {
            let table = entity_table(entity_arg(args)?, schema)?;
            let def = schema?.entity(entity_arg(args)?)?;
            // Pin the primary key when the id is a literal and the SET
            // column is not the pk itself (a pk rewrite would widen).
            match (args.get(1), args.get(2)) {
                (Some(Expr::Lit(Lit::Int(id))), Some(Expr::Lit(Lit::Str(col))))
                    if !col.eq_ignore_ascii_case(&def.pk) =>
                {
                    Some(Footprint {
                        reads: Vec::new(),
                        writes: vec![TableAccess {
                            table,
                            keys: vec![(def.pk.to_ascii_lowercase(), vec![Value::Int(*id)])],
                        }],
                        barrier: false,
                    })
                }
                _ => Some(whole_write(&table)),
            }
        }
        "orm_find" | "orm_find_all" | "orm_find_where" | "orm_count_where" => {
            entity_table(entity_arg(args)?, schema).map(|t| whole_read(std::slice::from_ref(&t)))
        }
        // Association traversal: the owning entity is dynamic.
        "orm_assoc" => None,
        _ => None,
    }
}

/// Context shared by the two walks.
pub(crate) struct WdCtx<'a> {
    pub analysis: &'a Analysis,
    pub schema: Option<&'a Schema>,
}

// ---------------------------------------------------------------------
// Branch side: is this branch deferrable *with* its writes, and what is
// its write footprint?
// ---------------------------------------------------------------------

/// Whether `s` (an `if`/`while`) can be deferred although it issues write
/// queries, and the union footprint of those writes if so. Returns `None`
/// when the branch has no statically bounded write story (including
/// "contains no writes at all" — the plain §4.2 path handles that).
pub(crate) fn write_branch_footprint(s: &Stmt, ctx: &WdCtx) -> Option<Footprint> {
    if !matches!(s, Stmt::If(..) | Stmt::While(..)) {
        return None;
    }
    let mut env = SEnv::new();
    let mut fp = Footprint::default();
    let mut writes = 0usize;
    if branch_stmt_ok(s, ctx, &mut env, &mut fp, &mut writes, false) && writes > 0 {
        Some(fp)
    } else {
        None
    }
}

/// Deferrability of one branch-body statement, allowing statically
/// bounded write calls. Accumulates the write footprint.
fn branch_stmt_ok(
    s: &Stmt,
    ctx: &WdCtx,
    env: &mut SEnv,
    fp: &mut Footprint,
    writes: &mut usize,
    in_loop: bool,
) -> bool {
    match s {
        Stmt::Let(name, e) => {
            let ok = branch_expr_ok(e, ctx, env, fp, writes);
            record_def(name, e, env);
            ok
        }
        Stmt::Assign(LValue::Var(name), e) => {
            let ok = branch_expr_ok(e, ctx, env, fp, writes);
            record_def(name, e, env);
            ok
        }
        // Heap writes force their target eagerly: not deferrable.
        Stmt::Assign(_, _) => false,
        Stmt::ExprStmt(e) => branch_expr_ok(e, ctx, env, fp, writes),
        // Nested control flow needs join-point discipline, exactly like
        // the tail walk: each arm sees a *copy* of the environment (its
        // own assignments are linear within the arm), and afterwards
        // anything either arm assigned is statically unknown — a write
        // whose SQL variable depends on which arm ran must not get the
        // footprint of just one path.
        Stmt::If(c, t, e) => {
            let ok = branch_expr_ok(c, ctx, env, fp, writes)
                && branch_nested(t, ctx, env, fp, writes, in_loop)
                && branch_nested(e, ctx, env, fp, writes, in_loop);
            invalidate_assigned(t, env);
            invalidate_assigned(e, env);
            ok
        }
        Stmt::While(c, b) => {
            // Loop-carried assignments vary per iteration: invalidate
            // them *before* walking the body, so `q = q + …; exec(q)`
            // inside a loop is Unknown rather than first-iteration-only.
            let mut inner = env.clone();
            invalidate_assigned(b, &mut inner);
            let ok = branch_expr_ok(c, ctx, env, fp, writes)
                && b.iter()
                    .all(|s| branch_stmt_ok(s, ctx, &mut inner, fp, writes, true));
            invalidate_assigned(b, env);
            ok
        }
        // DeferBlock bodies execute unconditionally inline: linear walk.
        Stmt::DeferBlock { body, .. } => body
            .iter()
            .all(|s| branch_stmt_ok(s, ctx, env, fp, writes, in_loop)),
        // `break`/`continue` only inside a loop being deferred whole.
        Stmt::Break | Stmt::Continue => in_loop,
        Stmt::Return(_) => false,
    }
}

/// Walks a conditionally executed nested region with its own copy of the
/// static-string environment.
fn branch_nested(
    stmts: &[Stmt],
    ctx: &WdCtx,
    env: &SEnv,
    fp: &mut Footprint,
    writes: &mut usize,
    in_loop: bool,
) -> bool {
    let mut inner = env.clone();
    stmts
        .iter()
        .all(|s| branch_stmt_ok(s, ctx, &mut inner, fp, writes, in_loop))
}

fn branch_expr_ok(
    e: &Expr,
    ctx: &WdCtx,
    env: &SEnv,
    fp: &mut Footprint,
    writes: &mut usize,
) -> bool {
    match e {
        Expr::Call(name, args) => match builtin_kind(name) {
            Some(BuiltinKind::WriteQuery) => {
                // Arguments must themselves be deferrable (they are
                // atoms after simplify), and the write must be bounded.
                if !args.iter().all(|a| expr_deferrable(a, ctx.analysis)) {
                    return false;
                }
                match call_footprint(name, args, env, ctx.schema) {
                    Some(w) => {
                        fp.merge(&w);
                        *writes += 1;
                        true
                    }
                    None => false,
                }
            }
            // A read inside a deferred branch would execute as a solo
            // round trip at force time: worse, not better. Bail.
            Some(BuiltinKind::Query) => false,
            _ => expr_deferrable(e, ctx.analysis),
        },
        Expr::Binary(_, a, b) => {
            branch_expr_ok(a, ctx, env, fp, writes) && branch_expr_ok(b, ctx, env, fp, writes)
        }
        Expr::Unary(_, a) => branch_expr_ok(a, ctx, env, fp, writes),
        other => expr_deferrable(other, ctx.analysis),
    }
}

// ---------------------------------------------------------------------
// Tail side: every database access issued after the branch.
// ---------------------------------------------------------------------

/// Union footprint of every database access in the given tail regions
/// (the statements after the branch in its own block, the bodies of
/// enclosing loops — one unrolling covers them, footprints being sets —
/// and the enclosing blocks' tails). `None` = some access could not be
/// bounded, which the caller must treat as conflicting with everything.
pub(crate) fn tail_footprint(regions: &[&[Stmt]], ctx: &WdCtx) -> Option<Footprint> {
    let mut fp = Footprint::default();
    for region in regions {
        let mut env = SEnv::new();
        for s in *region {
            if !tail_stmt(s, ctx, &mut env, &mut fp) {
                return None;
            }
        }
    }
    Some(fp)
}

/// Accumulates the database accesses of one tail statement; `false` =
/// unanalyzable.
fn tail_stmt(s: &Stmt, ctx: &WdCtx, env: &mut SEnv, fp: &mut Footprint) -> bool {
    match s {
        Stmt::Let(name, e) => {
            let ok = tail_expr(e, ctx, env, fp);
            record_def(name, e, env);
            ok
        }
        Stmt::Assign(lv, e) => {
            let lv_ok = match lv {
                LValue::Var(name) => {
                    // handled after the value walk below
                    record_def(name, e, env);
                    true
                }
                LValue::Field(b, _) => tail_expr(b, ctx, env, fp),
                LValue::Index(b, i) => tail_expr(b, ctx, env, fp) && tail_expr(i, ctx, env, fp),
            };
            lv_ok && tail_expr(e, ctx, env, fp)
        }
        Stmt::ExprStmt(e) | Stmt::Return(Some(e)) => tail_expr(e, ctx, env, fp),
        Stmt::If(c, t, els) => {
            let ok = tail_expr(c, ctx, env, fp)
                && walk_nested(t, ctx, env, fp)
                && walk_nested(els, ctx, env, fp);
            invalidate_assigned(t, env);
            invalidate_assigned(els, env);
            ok
        }
        Stmt::While(c, b) => {
            let ok = tail_expr(c, ctx, env, fp) && walk_nested(b, ctx, env, fp);
            invalidate_assigned(b, env);
            ok
        }
        Stmt::DeferBlock { body, .. } => {
            let ok = walk_nested(body, ctx, env, fp);
            invalidate_assigned(body, env);
            ok
        }
        Stmt::Break | Stmt::Continue | Stmt::Return(None) => true,
    }
}

fn walk_nested(stmts: &[Stmt], ctx: &WdCtx, env: &SEnv, fp: &mut Footprint) -> bool {
    let mut inner = env.clone();
    stmts.iter().all(|s| tail_stmt(s, ctx, &mut inner, fp))
}

/// After a conditionally executed region, anything it assigned is no
/// longer statically known in the outer environment.
fn invalidate_assigned(stmts: &[Stmt], env: &mut SEnv) {
    let mut assigned = Vec::new();
    assigned_vars(stmts, &mut assigned);
    let mut lets = Vec::new();
    collect_let_names(stmts, &mut lets);
    for v in assigned.into_iter().chain(lets) {
        env.insert(v, SStr::Unknown);
    }
}

fn collect_let_names(stmts: &[Stmt], out: &mut Vec<String>) {
    for s in stmts {
        match s {
            Stmt::Let(name, _) => out.push(name.clone()),
            Stmt::If(_, t, e) => {
                collect_let_names(t, out);
                collect_let_names(e, out);
            }
            Stmt::While(_, b) => collect_let_names(b, out),
            Stmt::DeferBlock { body, .. } => collect_let_names(body, out),
            _ => {}
        }
    }
}

fn tail_expr(e: &Expr, ctx: &WdCtx, env: &SEnv, fp: &mut Footprint) -> bool {
    match e {
        Expr::Call(name, args) => {
            let args_ok = args.iter().all(|a| tail_expr(a, ctx, env, fp));
            if !args_ok {
                return false;
            }
            match builtin_kind(name) {
                Some(BuiltinKind::Query) | Some(BuiltinKind::WriteQuery) => {
                    match call_footprint(name, args, env, ctx.schema) {
                        Some(f) => {
                            fp.merge(&f);
                            true
                        }
                        None => false,
                    }
                }
                Some(_) => true,
                // User functions: pure ones touch nothing; persistent
                // ones issue queries we cannot see — unanalyzable.
                // Impure non-persistent functions (output/heap only)
                // have no database footprint.
                None => !ctx.analysis.is_persistent(name),
            }
        }
        Expr::Field(b, _) => tail_expr(b, ctx, env, fp),
        Expr::Index(b, i) => tail_expr(b, ctx, env, fp) && tail_expr(i, ctx, env, fp),
        Expr::Binary(_, a, b) => tail_expr(a, ctx, env, fp) && tail_expr(b, ctx, env, fp),
        Expr::Unary(_, a) => tail_expr(a, ctx, env, fp),
        Expr::NewObject(fields) => fields.iter().all(|(_, v)| tail_expr(v, ctx, env, fp)),
        Expr::NewList(items) => items.iter().all(|v| tail_expr(v, ctx, env, fp)),
        Expr::Lit(_) | Expr::Var(_) => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::parser::parse_program;
    use crate::simplify::simplify_program;

    fn ctx_for(p: &Program) -> (Program, Analysis) {
        let s = simplify_program(p);
        let a = analyze(&s);
        (s, a)
    }

    fn main_body(src: &str) -> (Vec<Stmt>, Analysis) {
        let p = parse_program(src).unwrap();
        let (s, a) = ctx_for(&p);
        (s.function("main").unwrap().body.clone(), a)
    }

    fn find_branch(body: &[Stmt]) -> (usize, &Stmt) {
        body.iter()
            .enumerate()
            .find(|(_, s)| matches!(s, Stmt::If(..) | Stmt::While(..)))
            .expect("branch in body")
    }

    #[test]
    fn literal_prefix_write_extracts_table() {
        let (body, a) = main_body(
            r#"fn main(x) { if (x > 0) { exec("UPDATE audit SET n = " + str(x) + " WHERE id = 1"); } }"#,
        );
        let ctx = WdCtx {
            analysis: &a,
            schema: None,
        };
        let (_, s) = find_branch(&body);
        let fp = write_branch_footprint(s, &ctx).expect("bounded write branch");
        assert_eq!(fp.writes.len(), 1);
        assert_eq!(fp.writes[0].table, "audit");
    }

    #[test]
    fn fully_literal_write_gets_precise_pins() {
        let (body, a) =
            main_body(r#"fn main(x) { if (x) { exec("UPDATE audit SET n = 1 WHERE id = 7"); } }"#);
        let ctx = WdCtx {
            analysis: &a,
            schema: None,
        };
        let (_, s) = find_branch(&body);
        let fp = write_branch_footprint(s, &ctx).unwrap();
        assert_eq!(
            fp.writes[0].keys,
            vec![("id".to_string(), vec![Value::Int(7)])]
        );
    }

    #[test]
    fn unbounded_write_and_txn_boundaries_bail() {
        for src in [
            // Fully dynamic SQL: no table.
            r#"fn main(q) { if (1) { exec(q); } }"#,
            // Transaction boundary inside the branch.
            r#"fn main(x) { if (x) { commit(); } }"#,
            // Read query inside the branch.
            r#"fn main(x) { if (x) { let r = query("SELECT * FROM t WHERE id = 1"); } }"#,
        ] {
            let (body, a) = main_body(src);
            let ctx = WdCtx {
                analysis: &a,
                schema: None,
            };
            let (_, s) = find_branch(&body);
            assert!(write_branch_footprint(s, &ctx).is_none(), "{src}");
        }
    }

    #[test]
    fn tail_reads_resolve_through_prefixes() {
        let (body, a) = main_body(
            r#"fn main(x) {
                if (x) { exec("UPDATE audit SET n = 1 WHERE id = 1"); }
                let p = query("SELECT name FROM project WHERE id = " + str(x));
                print(p);
            }"#,
        );
        let ctx = WdCtx {
            analysis: &a,
            schema: None,
        };
        let (i, s) = find_branch(&body);
        let wfp = write_branch_footprint(s, &ctx).unwrap();
        let tail = tail_footprint(&[&body[i + 1..]], &ctx).expect("tail bounded");
        assert!(!wfp.conflicts_with(&tail), "audit vs project: disjoint");
    }

    #[test]
    fn conflicting_or_unbounded_tail_blocks_deferral() {
        // Tail reads the written table.
        let (body, a) = main_body(
            r#"fn main(x) {
                if (x) { exec("UPDATE project SET status = 1 WHERE id = 1"); }
                let p = query("SELECT name FROM project WHERE id = " + str(x));
            }"#,
        );
        let ctx = WdCtx {
            analysis: &a,
            schema: None,
        };
        let (i, s) = find_branch(&body);
        let wfp = write_branch_footprint(s, &ctx).unwrap();
        let tail = tail_footprint(&[&body[i + 1..]], &ctx).unwrap();
        assert!(wfp.conflicts_with(&tail));

        // Tail commit: barrier conflicts with everything.
        let (body, a) = main_body(
            r#"fn main(x) {
                if (x) { exec("UPDATE audit SET n = 1 WHERE id = 1"); }
                commit();
            }"#,
        );
        let ctx = WdCtx {
            analysis: &a,
            schema: None,
        };
        let (i, _) = find_branch(&body);
        assert!(
            tail_footprint(&[&body[i + 1..]], &ctx).is_none(),
            "commit in tail is unanalyzable"
        );
    }
}
