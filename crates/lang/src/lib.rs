//! # sloth-lang — the Sloth compiler and its kernel language
//!
//! Compiler half of Sloth (Cheung, Madden, Solar-Lezama — SIGMOD 2014).
//! Applications are written in the kernel language of §3.8 (extended with
//! functions, objects and lists); this crate provides:
//!
//! * [`parser`] — Java-ish concrete syntax.
//! * [`simplify`] — §3.1 code simplification (loop canonicalization,
//!   expression flattening).
//! * [`analysis`] — §4.1 persistence labelling, purity labelling, and
//!   §4.2 deferrability.
//! * [`opt`] — branch deferral and thunk coalescing transforms plus the
//!   [`opt::OptFlags`] switchboard of Fig. 12.
//! * [`interp`] — the standard evaluator (original application) and the
//!   extended-lazy evaluator (Sloth-compiled application) of §3.8, sharing
//!   the ORM data layer so both generate identical SQL.
//!
//! ```
//! use sloth_lang::{run_source, ExecStrategy, OptFlags};
//! use sloth_net::SimEnv;
//! use std::sync::Arc;
//!
//! let env = SimEnv::default_env();
//! env.seed_sql("CREATE TABLE t (id INT PRIMARY KEY, v INT)").unwrap();
//! env.seed_sql("INSERT INTO t VALUES (1, 10), (2, 20)").unwrap();
//! let schema = Arc::new(sloth_orm::Schema::new());
//!
//! let src = r#"
//!     fn main() {
//!         let a = query("SELECT v FROM t WHERE id = 1");
//!         let b = query("SELECT v FROM t WHERE id = 2");
//!         print(cell(a, 0, "v") + cell(b, 0, "v"));
//!     }
//! "#;
//! let out = run_source(src, &env, schema, ExecStrategy::Sloth(OptFlags::all()), vec![]).unwrap();
//! assert_eq!(out.output, vec!["30"]);
//! assert_eq!(out.net.round_trips, 1, "both queries in one batch");
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod ast;
pub mod builtins;
pub mod interp;
pub mod opt;
pub mod parser;
pub mod runtime;
pub mod simplify;
pub mod value;
mod writedefer;

pub use analysis::{analyze, Analysis};
pub use ast::{Expr, Function, Lit, Program, Stmt};
pub use interp::{prepare, prepare_with_schema, run_source, ExecStrategy, Prepared};
pub use opt::OptFlags;
pub use parser::{parse_block, parse_program, ParseError};
pub use runtime::{Counters, DataLayer, RunError, RunResult};
pub use simplify::simplify_program;
pub use value::V;
