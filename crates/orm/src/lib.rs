//! # sloth-orm — a mini object-relational mapper
//!
//! The Hibernate/JPA stand-in for the Sloth reproduction (the fetch-mode
//! configuration problem of §1; the JPA `find_thunk` extension of §5). It
//! provides:
//!
//! * [`schema`] — entity metadata with eager/lazy fetch strategies, exactly
//!   the configuration surface whose tuning difficulty motivates the paper.
//! * [`sqlgen`] — deterministic SQL generation shared by every execution
//!   mode (required for the query store's in-batch dedup to fire).
//! * [`session`] — a [`Session`] with two backends: **immediate**
//!   (Hibernate semantics: one round trip per fetch, eager prefetching at
//!   `find` time, lazy collections fetched on access) and **deferred**
//!   (Sloth semantics: `find_thunk` / `assoc_thunk` register queries with
//!   the [`sloth_core::QueryStore`] and return thunks).

#![warn(missing_docs)]

pub mod schema;
pub mod session;
pub mod sqlgen;

pub use schema::{
    entity, many_to_one, one_to_many, AssocDef, AssocKind, EntityDef, FetchStrategy, Schema,
};
pub use session::{deserialize, Entity, Session};
