//! SQL generation from entity metadata — the ORM's query writer.
//!
//! These are pure functions shared by the Rust-level [`crate::Session`] and
//! by the kernel-language interpreters in `sloth-lang`, so the original and
//! Sloth-compiled executions are guaranteed to generate byte-identical SQL
//! (a prerequisite for in-batch dedup to fire on the same queries the paper
//! saw).

use crate::schema::{AssocDef, AssocKind, EntityDef};
use sloth_sql::Value;

/// Renders a value as a SQL literal (delegates to the engine's single
/// source of truth so every layer emits byte-identical SQL).
pub fn literal(v: &Value) -> String {
    v.sql_literal()
}

/// `SELECT *` of one entity by primary key.
pub fn select_by_pk(def: &EntityDef, id: &Value) -> String {
    format!(
        "SELECT * FROM {} WHERE {} = {}",
        def.table,
        def.pk,
        literal(id)
    )
}

/// `SELECT *` of all rows of an entity.
pub fn select_all(def: &EntityDef) -> String {
    format!("SELECT * FROM {} ORDER BY {}", def.table, def.pk)
}

/// `SELECT *` filtered by one column equality.
pub fn select_where_eq(def: &EntityDef, column: &str, v: &Value) -> String {
    format!(
        "SELECT * FROM {} WHERE {} = {} ORDER BY {}",
        def.table,
        column,
        literal(v),
        def.pk
    )
}

/// The query an association access issues, given the owner's relevant key.
///
/// * one-to-many: key is the **owner's PK**; selects children by FK.
/// * many-to-one: key is the **FK value stored on the owner**; selects the
///   single target row by its PK.
pub fn select_assoc(assoc: &AssocDef, target: &EntityDef, key: &Value) -> String {
    match &assoc.kind {
        AssocKind::OneToMany { fk_column } => {
            format!(
                "SELECT * FROM {} WHERE {} = {} ORDER BY {}",
                target.table,
                fk_column,
                literal(key),
                target.pk
            )
        }
        AssocKind::ManyToOne { .. } => select_by_pk(target, key),
    }
}

/// `COUNT(*)` of an entity filtered by one column equality.
pub fn count_where_eq(def: &EntityDef, column: &str, v: &Value) -> String {
    format!(
        "SELECT COUNT(*) FROM {} WHERE {} = {}",
        def.table,
        column,
        literal(v)
    )
}

/// `INSERT` for a full row in column declaration order.
pub fn insert_row(def: &EntityDef, values: &[Value]) -> String {
    let cols: Vec<&str> = def.columns.iter().map(|(n, _)| n.as_str()).collect();
    let vals: Vec<String> = values.iter().map(literal).collect();
    format!(
        "INSERT INTO {} ({}) VALUES ({})",
        def.table,
        cols.join(", "),
        vals.join(", ")
    )
}

/// `UPDATE` of one column by primary key.
pub fn update_field(def: &EntityDef, id: &Value, column: &str, v: &Value) -> String {
    format!(
        "UPDATE {} SET {} = {} WHERE {} = {}",
        def.table,
        column,
        literal(v),
        def.pk,
        literal(id)
    )
}

/// `DELETE` by primary key.
pub fn delete_by_pk(def: &EntityDef, id: &Value) -> String {
    format!(
        "DELETE FROM {} WHERE {} = {}",
        def.table,
        def.pk,
        literal(id)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{entity, many_to_one, one_to_many, FetchStrategy};
    use sloth_sql::ast::ColumnType::*;

    fn patient() -> EntityDef {
        entity(
            "patient",
            "patient",
            "patient_id",
            &[("patient_id", Int), ("name", Text)],
            vec![
                one_to_many("encounters", "encounter", "patient_id", FetchStrategy::Lazy),
                many_to_one("creator", "user", "creator_id", FetchStrategy::Lazy),
            ],
        )
    }

    fn encounter() -> EntityDef {
        entity(
            "encounter",
            "encounter",
            "encounter_id",
            &[("encounter_id", Int), ("patient_id", Int)],
            vec![],
        )
    }

    #[test]
    fn pk_select() {
        assert_eq!(
            select_by_pk(&patient(), &Value::Int(7)),
            "SELECT * FROM patient WHERE patient_id = 7"
        );
    }

    #[test]
    fn string_literals_escaped() {
        assert_eq!(literal(&Value::Str("O'Hara".into())), "'O''Hara'");
    }

    #[test]
    fn one_to_many_assoc_sql() {
        let p = patient();
        let a = p.assoc("encounters").unwrap();
        assert_eq!(
            select_assoc(a, &encounter(), &Value::Int(7)),
            "SELECT * FROM encounter WHERE patient_id = 7 ORDER BY encounter_id"
        );
    }

    #[test]
    fn many_to_one_assoc_sql() {
        let p = patient();
        let a = p.assoc("creator").unwrap();
        let user = entity("user", "users", "user_id", &[("user_id", Int)], vec![]);
        assert_eq!(
            select_assoc(a, &user, &Value::Int(3)),
            "SELECT * FROM users WHERE user_id = 3"
        );
    }

    #[test]
    fn insert_and_update() {
        let p = patient();
        assert_eq!(
            insert_row(&p, &[Value::Int(1), Value::Str("Ada".into())]),
            "INSERT INTO patient (patient_id, name) VALUES (1, 'Ada')"
        );
        assert_eq!(
            update_field(&p, &Value::Int(1), "name", &Value::Str("Grace".into())),
            "UPDATE patient SET name = 'Grace' WHERE patient_id = 1"
        );
        assert_eq!(
            delete_by_pk(&p, &Value::Int(1)),
            "DELETE FROM patient WHERE patient_id = 1"
        );
    }

    #[test]
    fn deterministic_generation() {
        // Same inputs must yield byte-identical SQL (dedup depends on it).
        let p = patient();
        assert_eq!(
            select_by_pk(&p, &Value::Int(5)),
            select_by_pk(&p, &Value::Int(5))
        );
    }
}
