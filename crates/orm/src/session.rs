//! The ORM session: Hibernate-style immediate execution with eager/lazy
//! fetch strategies, plus the Sloth **deferred** mode in which every fetch
//! returns a thunk registered with the query store (the paper's
//! `find_thunk` JPA extension, §5).

use std::collections::BTreeMap;
use std::sync::Arc;

use sloth_core::{query_thunk, QueryStore, Thunk};
use sloth_net::SimEnv;
use sloth_sql::{ResultSet, SqlError, Value};

use crate::schema::{AssocKind, EntityDef, FetchStrategy, Schema};
use crate::sqlgen;

/// A materialized entity: scalar fields plus any prefetched associations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Entity {
    /// Entity name in the schema.
    pub entity: String,
    /// Scalar column values.
    pub values: BTreeMap<String, Value>,
    /// Associations already fetched (eager fetching or memoized access).
    pub fetched_assocs: BTreeMap<String, Vec<Entity>>,
}

impl Entity {
    /// A scalar field value.
    pub fn get(&self, column: &str) -> Option<&Value> {
        self.values.get(column)
    }

    /// The field value as `i64`, if numeric.
    pub fn get_i64(&self, column: &str) -> Option<i64> {
        self.get(column).and_then(Value::as_i64)
    }

    /// The field value as `&str`, if textual.
    pub fn get_str(&self, column: &str) -> Option<&str> {
        self.get(column).and_then(Value::as_str)
    }

    /// This entity's primary-key value.
    pub fn pk(&self, def: &EntityDef) -> Value {
        self.values.get(&def.pk).cloned().unwrap_or(Value::Null)
    }
}

/// Converts a result set into entities of the given definition.
pub fn deserialize(def: &EntityDef, rs: &ResultSet) -> Vec<Entity> {
    rs.rows
        .iter()
        .map(|row| {
            let values = rs
                .columns
                .iter()
                .zip(row)
                .map(|(c, v)| (c.clone(), v.clone()))
                .collect();
            Entity {
                entity: def.name.clone(),
                values,
                fetched_assocs: BTreeMap::new(),
            }
        })
        .collect()
}

/// How the session executes fetches.
#[derive(Clone)]
enum Backend {
    /// Original application: one round trip per query, honouring eager/lazy
    /// fetch strategies.
    Immediate(SimEnv),
    /// Sloth-compiled application: queries register with the query store.
    Deferred(QueryStore),
}

/// An ORM session bound to a schema and an execution backend.
#[derive(Clone)]
pub struct Session {
    schema: Arc<Schema>,
    backend: Backend,
}

impl Session {
    /// Hibernate-style session: every fetch is an immediate round trip and
    /// eager associations are prefetched at `find` time.
    pub fn immediate(env: SimEnv, schema: Arc<Schema>) -> Self {
        Session {
            schema,
            backend: Backend::Immediate(env),
        }
    }

    /// Sloth session: fetches register with `store` and return thunks.
    pub fn deferred(store: QueryStore, schema: Arc<Schema>) -> Self {
        Session {
            schema,
            backend: Backend::Deferred(store),
        }
    }

    /// The schema this session maps.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    fn def(&self, entity: &str) -> Result<&EntityDef, SqlError> {
        self.schema
            .entity(entity)
            .ok_or_else(|| SqlError::new(format!("unknown entity {entity}")))
    }

    fn run(&self, sql: &str) -> Result<ResultSet, SqlError> {
        match &self.backend {
            Backend::Immediate(env) => env.query(sql),
            Backend::Deferred(store) => {
                let id = store.register(sql.to_string())?;
                store.result(id)
            }
        }
    }

    /// Issues a write. In deferred mode a write whose footprint is
    /// disjoint from everything pending is **deferred** (selective
    /// laziness) — its empty result is not demanded, so it costs no round
    /// trip until something drains it.
    fn run_write(&self, sql: &str) -> Result<(), SqlError> {
        match &self.backend {
            Backend::Immediate(env) => env.query(sql).map(|_| ()),
            Backend::Deferred(store) => {
                let reg = store.register_stmt(sql.to_string())?;
                if reg.deferred {
                    return Ok(());
                }
                store.result(reg.id).map(|_| ())
            }
        }
    }

    /// `JPA find`: fetch one entity by primary key. In immediate mode this
    /// also prefetches every `Eager` association (costing extra round
    /// trips — the waste Sloth eliminates, §6.1).
    pub fn find(&self, entity: &str, id: i64) -> Result<Option<Entity>, SqlError> {
        let def = self.def(entity)?;
        let rs = self.run(&sqlgen::select_by_pk(def, &Value::Int(id)))?;
        let mut entities = deserialize(def, &rs);
        let Some(mut e) = entities.pop() else {
            return Ok(None);
        };
        if matches!(self.backend, Backend::Immediate(_)) {
            let eager: Vec<String> = def
                .assocs
                .iter()
                .filter(|a| a.strategy == FetchStrategy::Eager)
                .map(|a| a.name.clone())
                .collect();
            for name in eager {
                let children = self.fetch_assoc(&e, &name)?;
                e.fetched_assocs.insert(name, children);
            }
        }
        Ok(Some(e))
    }

    /// `JPA find_thunk` (Sloth's extension): registers the PK query now,
    /// deserializes on force. Eager strategies are deliberately ignored —
    /// Sloth "only brings in entities as they are originally requested".
    pub fn find_thunk(&self, entity: &str, id: i64) -> Result<Thunk<Option<Entity>>, SqlError> {
        let store = self.require_store()?;
        let def = self.def(entity)?.clone();
        let sql = sqlgen::select_by_pk(&def, &Value::Int(id));
        Ok(query_thunk(store, sql, move |rs| {
            deserialize(&def, &rs).pop()
        }))
    }

    /// Fetches an association's entities (issuing its query now, in either
    /// backend). Memoized results on the entity take precedence.
    pub fn fetch_assoc(&self, owner: &Entity, assoc: &str) -> Result<Vec<Entity>, SqlError> {
        if let Some(cached) = owner.fetched_assocs.get(assoc) {
            return Ok(cached.clone());
        }
        let (sql, target) = self.assoc_query(owner, assoc)?;
        let rs = self.run(&sql)?;
        Ok(deserialize(&target, &rs))
    }

    /// Sloth association access: registers the association query now (the
    /// owner must already be materialized to know its key) and defers
    /// deserialization.
    pub fn assoc_thunk(&self, owner: &Entity, assoc: &str) -> Result<Thunk<Vec<Entity>>, SqlError> {
        let store = self.require_store()?;
        let (sql, target) = self.assoc_query(owner, assoc)?;
        Ok(query_thunk(store, sql, move |rs| deserialize(&target, &rs)))
    }

    /// The SQL and target definition for an association access.
    fn assoc_query(&self, owner: &Entity, assoc: &str) -> Result<(String, EntityDef), SqlError> {
        let def = self.def(&owner.entity)?;
        let a = def
            .assoc(assoc)
            .ok_or_else(|| SqlError::new(format!("no assoc {assoc} on {}", owner.entity)))?;
        let target = self.def(&a.target)?.clone();
        let key = match &a.kind {
            AssocKind::OneToMany { .. } => owner.pk(def),
            AssocKind::ManyToOne { fk_column } => {
                owner.get(fk_column).cloned().unwrap_or(Value::Null)
            }
        };
        Ok((sqlgen::select_assoc(a, &target, &key), target))
    }

    /// All entities of a kind, ordered by PK.
    pub fn find_all(&self, entity: &str) -> Result<Vec<Entity>, SqlError> {
        let def = self.def(entity)?;
        let rs = self.run(&sqlgen::select_all(def))?;
        Ok(deserialize(def, &rs))
    }

    /// Entities filtered by one column equality, ordered by PK.
    pub fn find_where(
        &self,
        entity: &str,
        column: &str,
        value: &Value,
    ) -> Result<Vec<Entity>, SqlError> {
        let def = self.def(entity)?;
        let rs = self.run(&sqlgen::select_where_eq(def, column, value))?;
        Ok(deserialize(def, &rs))
    }

    /// Deferred variant of [`Session::find_where`].
    pub fn find_where_thunk(
        &self,
        entity: &str,
        column: &str,
        value: &Value,
    ) -> Result<Thunk<Vec<Entity>>, SqlError> {
        let store = self.require_store()?;
        let def = self.def(entity)?.clone();
        let sql = sqlgen::select_where_eq(&def, column, value);
        Ok(query_thunk(store, sql, move |rs| deserialize(&def, &rs)))
    }

    /// Persists a new entity row (write: drains or defers per the
    /// deployment's selective-laziness setting — a conflicting write
    /// still flushes any pending batch, riding it).
    pub fn save(&self, entity: &str, values: &[Value]) -> Result<(), SqlError> {
        let def = self.def(entity)?;
        let sql = sqlgen::insert_row(def, values);
        self.run_write(&sql)
    }

    /// Updates one field by primary key (write: drains or defers, see
    /// [`Session::save`]).
    pub fn update_field(
        &self,
        entity: &str,
        id: i64,
        column: &str,
        value: &Value,
    ) -> Result<(), SqlError> {
        let def = self.def(entity)?;
        let sql = sqlgen::update_field(def, &Value::Int(id), column, value);
        self.run_write(&sql)
    }

    fn require_store(&self) -> Result<&QueryStore, SqlError> {
        match &self.backend {
            Backend::Deferred(store) => Ok(store),
            Backend::Immediate(_) => Err(SqlError::new(
                "thunk API requires a deferred (Sloth) session",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{entity, one_to_many, FetchStrategy};
    use sloth_sql::ast::ColumnType::*;

    fn schema() -> Arc<Schema> {
        let mut s = Schema::new();
        s.add(entity(
            "patient",
            "patient",
            "patient_id",
            &[("patient_id", Int), ("name", Text)],
            vec![
                one_to_many(
                    "encounters",
                    "encounter",
                    "patient_id",
                    FetchStrategy::Eager,
                ),
                one_to_many("visits", "visit", "patient_id", FetchStrategy::Lazy),
            ],
        ));
        s.add(entity(
            "encounter",
            "encounter",
            "encounter_id",
            &[("encounter_id", Int), ("patient_id", Int), ("kind", Text)],
            vec![],
        ));
        s.add(entity(
            "visit",
            "visit",
            "visit_id",
            &[("visit_id", Int), ("patient_id", Int)],
            vec![],
        ));
        Arc::new(s)
    }

    fn seeded_env(schema: &Schema) -> SimEnv {
        let env = SimEnv::default_env();
        for ddl in schema.ddl() {
            env.seed_sql(&ddl).unwrap();
        }
        env.seed_sql("INSERT INTO patient VALUES (1, 'Ada'), (2, 'Grace')")
            .unwrap();
        env.seed_sql(
            "INSERT INTO encounter VALUES (10, 1, 'checkup'), (11, 1, 'lab'), (12, 2, 'er')",
        )
        .unwrap();
        env.seed_sql("INSERT INTO visit VALUES (100, 1)").unwrap();
        env
    }

    #[test]
    fn immediate_find_prefetches_eager_assocs() {
        let schema = schema();
        let env = seeded_env(&schema);
        let s = Session::immediate(env.clone(), Arc::clone(&schema));
        let p = s.find("patient", 1).unwrap().unwrap();
        assert_eq!(p.get_str("name"), Some("Ada"));
        // find + eager encounters = 2 round trips; lazy visits untouched.
        assert_eq!(env.stats().round_trips, 2);
        assert_eq!(p.fetched_assocs.get("encounters").unwrap().len(), 2);
        assert!(!p.fetched_assocs.contains_key("visits"));
    }

    #[test]
    fn immediate_lazy_assoc_costs_a_trip_on_access() {
        let schema = schema();
        let env = seeded_env(&schema);
        let s = Session::immediate(env.clone(), Arc::clone(&schema));
        let p = s.find("patient", 1).unwrap().unwrap();
        let before = env.stats().round_trips;
        let visits = s.fetch_assoc(&p, "visits").unwrap();
        assert_eq!(visits.len(), 1);
        assert_eq!(env.stats().round_trips, before + 1);
    }

    #[test]
    fn deferred_find_thunk_batches() {
        let schema = schema();
        let env = seeded_env(&schema);
        let store = QueryStore::new(env.clone());
        let s = Session::deferred(store.clone(), Arc::clone(&schema));
        let t1 = s.find_thunk("patient", 1).unwrap();
        let t2 = s.find_thunk("patient", 2).unwrap();
        assert_eq!(env.stats().round_trips, 0);
        let p1 = t1.force().unwrap();
        let p2 = t2.force().unwrap();
        assert_eq!(env.stats().round_trips, 1, "both finds in one batch");
        assert_eq!(p1.get_str("name"), Some("Ada"));
        assert_eq!(p2.get_str("name"), Some("Grace"));
        // Eager strategy ignored in Sloth mode: no encounter query issued.
        assert_eq!(env.stats().queries, 2);
    }

    #[test]
    fn deferred_assoc_thunk_registers_now() {
        let schema = schema();
        let env = seeded_env(&schema);
        let store = QueryStore::new(env.clone());
        let s = Session::deferred(store.clone(), Arc::clone(&schema));
        let p = s.find_thunk("patient", 1).unwrap().force().unwrap();
        let before_trips = env.stats().round_trips;
        let enc = s.assoc_thunk(&p, "encounters").unwrap();
        let vis = s.assoc_thunk(&p, "visits").unwrap();
        assert_eq!(store.pending_len(), 2);
        assert_eq!(env.stats().round_trips, before_trips);
        assert_eq!(enc.force().len(), 2);
        assert_eq!(vis.force().len(), 1);
        assert_eq!(env.stats().round_trips, before_trips + 1);
    }

    #[test]
    fn find_missing_returns_none() {
        let schema = schema();
        let env = seeded_env(&schema);
        let s = Session::immediate(env, Arc::clone(&schema));
        assert!(s.find("patient", 999).unwrap().is_none());
        assert!(s.find("martian", 1).is_err());
    }

    #[test]
    fn memoized_assoc_not_refetched() {
        let schema = schema();
        let env = seeded_env(&schema);
        let s = Session::immediate(env.clone(), Arc::clone(&schema));
        let p = s.find("patient", 1).unwrap().unwrap();
        let trips = env.stats().round_trips;
        // encounters were eagerly fetched; re-access hits the memo.
        let enc = s.fetch_assoc(&p, "encounters").unwrap();
        assert_eq!(enc.len(), 2);
        assert_eq!(env.stats().round_trips, trips);
    }

    #[test]
    fn save_flushes_pending_batch_in_deferred_mode() {
        let schema = schema();
        let env = seeded_env(&schema);
        env.set_write_deferral(false);
        let store = QueryStore::new(env.clone());
        let s = Session::deferred(store.clone(), Arc::clone(&schema));
        let _t = s.find_thunk("patient", 1).unwrap();
        assert_eq!(store.pending_len(), 1);
        s.save("visit", &[Value::Int(101), Value::Int(2)]).unwrap();
        assert_eq!(store.pending_len(), 0, "write flushed the batch");
        // Write-aware batching: the pending find and the INSERT share one
        // round trip instead of splitting into two.
        assert_eq!(env.stats().round_trips, 1);
        assert_eq!(store.stats().write_batched, 1);
    }

    #[test]
    fn disjoint_save_defers_with_selective_laziness() {
        let schema = schema();
        let env = seeded_env(&schema);
        let store = QueryStore::new(env.clone());
        let s = Session::deferred(store.clone(), Arc::clone(&schema));
        let t = s.find_thunk("patient", 1).unwrap();
        // The INSERT touches `visit`, disjoint from the pending patient
        // lookup: it defers — no round trip at all yet.
        s.save("visit", &[Value::Int(101), Value::Int(2)]).unwrap();
        assert_eq!(env.stats().round_trips, 0, "write deferred, read lazy");
        assert_eq!(store.pending_len(), 2);
        assert_eq!(store.stats().deferred_writes, 1);
        // Forcing the find drains both in ONE round trip.
        assert!(t.force().is_some());
        assert_eq!(env.stats().round_trips, 1);
        // A second disjoint write defers again; update_field drains it
        // only when it conflicts.
        s.update_field("visit", 101, "patient_id", &Value::Int(3))
            .unwrap();
        assert_eq!(env.stats().round_trips, 1, "still deferred");
        store.flush_deferred_writes().unwrap();
        assert_eq!(env.stats().round_trips, 2);
        let rs = env
            .query("SELECT patient_id FROM visit WHERE visit_id = 101")
            .unwrap();
        assert_eq!(rs.get(0, "patient_id").unwrap().as_i64(), Some(3));
    }

    #[test]
    fn thunk_api_requires_deferred_session() {
        let schema = schema();
        let env = seeded_env(&schema);
        let s = Session::immediate(env, Arc::clone(&schema));
        assert!(s.find_thunk("patient", 1).is_err());
    }

    #[test]
    fn find_where_filters() {
        let schema = schema();
        let env = seeded_env(&schema);
        let s = Session::immediate(env, Arc::clone(&schema));
        let encs = s
            .find_where("encounter", "patient_id", &Value::Int(1))
            .unwrap();
        assert_eq!(encs.len(), 2);
        assert_eq!(encs[0].get_i64("encounter_id"), Some(10));
    }
}
