//! Entity metadata: the ORM mapping configuration (the paper's Hibernate
//! `hbm.xml` / JPA annotations equivalent).

use std::collections::BTreeMap;

use sloth_sql::ast::ColumnType;

/// When an association is brought in from the database (§1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchStrategy {
    /// Fetched together with the owning entity, whether used or not.
    Eager,
    /// Fetched on first access (Hibernate collection proxy).
    Lazy,
}

/// The shape of an association.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssocKind {
    /// This entity holds a foreign key to one target entity.
    ManyToOne {
        /// Column on the owning table holding the target's primary key.
        fk_column: String,
    },
    /// The target table holds a foreign key back to this entity.
    OneToMany {
        /// Column on the target table referencing this entity's PK.
        fk_column: String,
    },
}

/// A named association from one entity to another.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssocDef {
    /// Accessor name, e.g. `encounters`.
    pub name: String,
    /// Target entity name.
    pub target: String,
    /// Shape.
    pub kind: AssocKind,
    /// Fetch strategy configured by the application developer.
    pub strategy: FetchStrategy,
}

/// One persistent entity mapped onto a table.
#[derive(Debug, Clone, PartialEq)]
pub struct EntityDef {
    /// Entity name (lower snake case by convention).
    pub name: String,
    /// Backing table name.
    pub table: String,
    /// Primary-key column.
    pub pk: String,
    /// Scalar columns `(name, type)` in declaration order (includes the PK).
    pub columns: Vec<(String, ColumnType)>,
    /// Declared associations.
    pub assocs: Vec<AssocDef>,
}

impl EntityDef {
    /// Finds an association by name.
    pub fn assoc(&self, name: &str) -> Option<&AssocDef> {
        self.assocs.iter().find(|a| a.name == name)
    }

    /// `CREATE TABLE` DDL for this entity.
    pub fn ddl(&self) -> String {
        let cols: Vec<String> = self
            .columns
            .iter()
            .map(|(name, ty)| {
                let tyname = match ty {
                    ColumnType::Int => "INT",
                    ColumnType::Float => "FLOAT",
                    ColumnType::Text => "TEXT",
                    ColumnType::Bool => "BOOL",
                };
                if *name == self.pk {
                    format!("{name} {tyname} PRIMARY KEY")
                } else {
                    format!("{name} {tyname}")
                }
            })
            .collect();
        format!("CREATE TABLE {} ({})", self.table, cols.join(", "))
    }

    /// `CREATE INDEX` statements for all foreign keys referencing this
    /// entity's table from one-to-many associations declared on it.
    pub fn index_ddl(&self, schema: &Schema) -> Vec<String> {
        let mut out = Vec::new();
        for a in &self.assocs {
            if let AssocKind::OneToMany { fk_column } = &a.kind {
                if let Some(target) = schema.entity(&a.target) {
                    out.push(format!("CREATE INDEX ON {} ({})", target.table, fk_column));
                }
            }
        }
        out
    }
}

/// A set of entity definitions (deterministically ordered).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Schema {
    entities: BTreeMap<String, EntityDef>,
}

impl Schema {
    /// Empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Adds (or replaces) an entity definition.
    pub fn add(&mut self, def: EntityDef) {
        self.entities.insert(def.name.clone(), def);
    }

    /// Looks up an entity by name.
    pub fn entity(&self, name: &str) -> Option<&EntityDef> {
        self.entities.get(name)
    }

    /// All entities in name order.
    pub fn entities(&self) -> impl Iterator<Item = &EntityDef> {
        self.entities.values()
    }

    /// Number of entities.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// Whether the schema has no entities.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// Hash-partitioning spec for the sharded backend: every entity's
    /// table is sharded **by its entity id** (the primary-key column).
    /// ORM-generated statements are single-table, so entity loads route to
    /// one shard, association fetches (`WHERE fk = v`) scatter-gather, and
    /// no cross-shard join can ever arise from generated SQL.
    pub fn shard_spec(&self) -> sloth_sql::ShardSpec {
        self.entities
            .values()
            .fold(sloth_sql::ShardSpec::new(), |spec, e| {
                spec.shard(&e.table, &e.pk)
            })
    }

    /// Full DDL: `CREATE TABLE` for every entity then FK indexes.
    pub fn ddl(&self) -> Vec<String> {
        let mut out: Vec<String> = self.entities.values().map(EntityDef::ddl).collect();
        for e in self.entities.values() {
            out.extend(e.index_ddl(self));
        }
        out
    }
}

/// Builder shorthand used heavily by the app schemas.
pub fn entity(
    name: &str,
    table: &str,
    pk: &str,
    columns: &[(&str, ColumnType)],
    assocs: Vec<AssocDef>,
) -> EntityDef {
    EntityDef {
        name: name.to_string(),
        table: table.to_string(),
        pk: pk.to_string(),
        columns: columns.iter().map(|(n, t)| (n.to_string(), *t)).collect(),
        assocs,
    }
}

/// Builder shorthand for a one-to-many association.
pub fn one_to_many(name: &str, target: &str, fk: &str, strategy: FetchStrategy) -> AssocDef {
    AssocDef {
        name: name.to_string(),
        target: target.to_string(),
        kind: AssocKind::OneToMany {
            fk_column: fk.to_string(),
        },
        strategy,
    }
}

/// Builder shorthand for a many-to-one association.
pub fn many_to_one(name: &str, target: &str, fk: &str, strategy: FetchStrategy) -> AssocDef {
    AssocDef {
        name: name.to_string(),
        target: target.to_string(),
        kind: AssocKind::ManyToOne {
            fk_column: fk.to_string(),
        },
        strategy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sloth_sql::ast::ColumnType::*;

    fn sample() -> Schema {
        let mut s = Schema::new();
        s.add(entity(
            "patient",
            "patient",
            "patient_id",
            &[("patient_id", Int), ("name", Text)],
            vec![one_to_many(
                "encounters",
                "encounter",
                "patient_id",
                FetchStrategy::Lazy,
            )],
        ));
        s.add(entity(
            "encounter",
            "encounter",
            "encounter_id",
            &[("encounter_id", Int), ("patient_id", Int), ("kind", Text)],
            vec![],
        ));
        s
    }

    #[test]
    fn ddl_round_trips_through_engine() {
        let schema = sample();
        let mut db = sloth_sql::Database::new();
        for stmt in schema.ddl() {
            db.execute(&stmt).unwrap();
        }
        assert!(db.table("patient").is_some());
        assert!(db.table("encounter").is_some());
    }

    #[test]
    fn pk_marked_in_ddl() {
        let schema = sample();
        let ddl = schema.entity("patient").unwrap().ddl();
        assert!(ddl.contains("patient_id INT PRIMARY KEY"));
    }

    #[test]
    fn fk_indexes_generated() {
        let schema = sample();
        let ddl = schema.ddl();
        assert!(ddl
            .iter()
            .any(|s| s == "CREATE INDEX ON encounter (patient_id)"));
    }

    #[test]
    fn assoc_lookup() {
        let schema = sample();
        let p = schema.entity("patient").unwrap();
        assert!(p.assoc("encounters").is_some());
        assert!(p.assoc("nope").is_none());
    }
}
