//! Shared, memoizing thunks — the building block of extended lazy
//! evaluation (§3.2).
//!
//! A [`Thunk<T>`] is a place-holder for a delayed computation. Forcing it
//! runs the computation once and memoizes the result; every clone shares the
//! same cell, so a thunk stored in a model map, captured by another thunk
//! and held in a local variable evaluates exactly once. This is the faithful
//! Rust rendering of the paper's `Thunk._force()` with memoization —
//! shared ownership is what `Rc<RefCell<…>>` buys against the borrow
//! checker.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

/// Count of thunks allocated process-wide (runtime-overhead accounting).
static THUNKS_ALLOCATED: AtomicU64 = AtomicU64::new(0);
/// Count of thunk forces that actually ran a delayed computation.
static THUNKS_FORCED: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the global thunk counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThunkCounters {
    /// Thunks allocated since process start.
    pub allocated: u64,
    /// Delayed computations actually executed.
    pub forced: u64,
}

/// Reads the global thunk counters.
pub fn thunk_counters() -> ThunkCounters {
    ThunkCounters {
        allocated: THUNKS_ALLOCATED.load(Ordering::Relaxed),
        forced: THUNKS_FORCED.load(Ordering::Relaxed),
    }
}

enum State<T> {
    /// Not yet evaluated; holds the delayed computation.
    Pending(Box<dyn FnOnce() -> T>),
    /// Being evaluated right now (re-entrant force is a bug).
    InFlight,
    /// Evaluated; memoized result.
    Forced(T),
}

/// A delayed, memoized, shareable computation.
pub struct Thunk<T> {
    cell: Rc<RefCell<State<T>>>,
}

impl<T> Clone for Thunk<T> {
    fn clone(&self) -> Self {
        Thunk {
            cell: Rc::clone(&self.cell),
        }
    }
}

impl<T: Clone + 'static> Thunk<T> {
    /// Delays `f` until the first [`force`](Thunk::force).
    pub fn new(f: impl FnOnce() -> T + 'static) -> Self {
        THUNKS_ALLOCATED.fetch_add(1, Ordering::Relaxed);
        Thunk {
            cell: Rc::new(RefCell::new(State::Pending(Box::new(f)))),
        }
    }

    /// An already-evaluated thunk (the paper's `LiteralThunk`, used to wrap
    /// results flowing back from external code — §3.4).
    pub fn ready(value: T) -> Self {
        THUNKS_ALLOCATED.fetch_add(1, Ordering::Relaxed);
        Thunk {
            cell: Rc::new(RefCell::new(State::Forced(value))),
        }
    }

    /// Evaluates the thunk (once) and returns a clone of the result.
    ///
    /// # Panics
    /// Panics on re-entrant forcing (a thunk whose computation forces
    /// itself), which would be a cyclic data dependency in the source
    /// program.
    pub fn force(&self) -> T {
        // Fast path: already forced.
        if let State::Forced(v) = &*self.cell.borrow() {
            return v.clone();
        }
        let f = match std::mem::replace(&mut *self.cell.borrow_mut(), State::InFlight) {
            State::Pending(f) => f,
            State::Forced(v) => {
                // Lost a race with another handle on this same cell within
                // the borrow gap (single-threaded, so only via reentrancy).
                *self.cell.borrow_mut() = State::Forced(v.clone());
                return v;
            }
            State::InFlight => panic!("re-entrant thunk force: cyclic dependency"),
        };
        THUNKS_FORCED.fetch_add(1, Ordering::Relaxed);
        let v = f();
        *self.cell.borrow_mut() = State::Forced(v.clone());
        v
    }

    /// Whether the thunk has been evaluated.
    pub fn is_forced(&self) -> bool {
        matches!(&*self.cell.borrow(), State::Forced(_))
    }

    /// A new thunk applying `f` to this thunk's (lazily forced) value.
    pub fn map<U: Clone + 'static>(&self, f: impl FnOnce(T) -> U + 'static) -> Thunk<U> {
        let this = self.clone();
        Thunk::new(move || f(this.force()))
    }

    /// Combines two thunks lazily.
    pub fn zip_with<U: Clone + 'static, V: Clone + 'static>(
        &self,
        other: &Thunk<U>,
        f: impl FnOnce(T, U) -> V + 'static,
    ) -> Thunk<V> {
        let a = self.clone();
        let b = other.clone();
        Thunk::new(move || f(a.force(), b.force()))
    }
}

impl<T: Clone + fmt::Debug + 'static> fmt::Debug for Thunk<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &*self.cell.borrow() {
            State::Forced(v) => write!(f, "Thunk(forced: {v:?})"),
            State::Pending(_) => write!(f, "Thunk(pending)"),
            State::InFlight => write!(f, "Thunk(in-flight)"),
        }
    }
}

/// A coalesced block of delayed statements with several outputs (§4.3).
///
/// The block body runs once, on the first force of **any** output; all
/// outputs are then filled. This avoids one thunk allocation per temporary
/// in straight-line code.
pub struct ThunkBlock<T: Clone + 'static> {
    body: Thunk<Vec<T>>,
}

impl<T: Clone + 'static> ThunkBlock<T> {
    /// Creates a block whose body produces `n` outputs.
    pub fn new(f: impl FnOnce() -> Vec<T> + 'static) -> Self {
        ThunkBlock {
            body: Thunk::new(f),
        }
    }

    /// The `i`-th output as a thunk; forcing it runs the whole block.
    pub fn output(&self, i: usize) -> Thunk<T> {
        self.body.map(move |vs| {
            vs.get(i)
                .cloned()
                .unwrap_or_else(|| panic!("thunk block has no output {i}"))
        })
    }

    /// Whether the block body has run.
    pub fn is_forced(&self) -> bool {
        self.body.is_forced()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn force_memoizes() {
        let runs = Rc::new(Cell::new(0));
        let r = Rc::clone(&runs);
        let t = Thunk::new(move || {
            r.set(r.get() + 1);
            42
        });
        assert!(!t.is_forced());
        assert_eq!(t.force(), 42);
        assert_eq!(t.force(), 42);
        assert_eq!(runs.get(), 1);
        assert!(t.is_forced());
    }

    #[test]
    fn clones_share_memoization() {
        let runs = Rc::new(Cell::new(0));
        let r = Rc::clone(&runs);
        let t = Thunk::new(move || {
            r.set(r.get() + 1);
            "hello".to_string()
        });
        let t2 = t.clone();
        assert_eq!(t2.force(), "hello");
        assert_eq!(t.force(), "hello");
        assert_eq!(runs.get(), 1);
    }

    #[test]
    fn ready_never_runs_anything() {
        let before = thunk_counters().forced;
        let t = Thunk::ready(7);
        assert!(t.is_forced());
        assert_eq!(t.force(), 7);
        assert_eq!(thunk_counters().forced, before);
    }

    #[test]
    fn map_is_lazy() {
        let runs = Rc::new(Cell::new(0));
        let r = Rc::clone(&runs);
        let t = Thunk::new(move || {
            r.set(r.get() + 1);
            10
        });
        let u = t.map(|x| x * 2);
        assert_eq!(runs.get(), 0);
        assert_eq!(u.force(), 20);
        assert_eq!(runs.get(), 1);
    }

    #[test]
    fn zip_with_forces_both() {
        let a = Thunk::new(|| 3);
        let b = Thunk::new(|| 4);
        let c = a.zip_with(&b, |x, y| x + y);
        assert_eq!(c.force(), 7);
        assert!(a.is_forced() && b.is_forced());
    }

    #[test]
    fn block_runs_once_for_all_outputs() {
        let runs = Rc::new(Cell::new(0));
        let r = Rc::clone(&runs);
        let block = ThunkBlock::new(move || {
            r.set(r.get() + 1);
            vec![1, 2, 3]
        });
        let o0 = block.output(0);
        let o2 = block.output(2);
        assert_eq!(o2.force(), 3);
        assert!(block.is_forced());
        assert_eq!(o0.force(), 1);
        assert_eq!(runs.get(), 1);
    }

    #[test]
    #[should_panic(expected = "re-entrant")]
    fn reentrant_force_panics() {
        let cell: Rc<RefCell<Option<Thunk<i32>>>> = Rc::new(RefCell::new(None));
        let c2 = Rc::clone(&cell);
        let t = Thunk::new(move || c2.borrow().as_ref().unwrap().force());
        *cell.borrow_mut() = Some(t.clone());
        t.force();
    }

    #[test]
    fn counters_increase() {
        let before = thunk_counters();
        let t = Thunk::new(|| 1);
        t.force();
        let after = thunk_counters();
        assert!(after.allocated > before.allocated);
        assert!(after.forced > before.forced);
    }
}
