//! Shared, memoizing thunks — the building block of extended lazy
//! evaluation (§3.2).
//!
//! A [`Thunk<T>`] is a place-holder for a delayed computation. Forcing it
//! runs the computation once and memoizes the result; every clone shares the
//! same cell, so a thunk stored in a model map, captured by another thunk
//! and held in a local variable evaluates exactly once. This is the faithful
//! Rust rendering of the paper's `Thunk._force()` with memoization.
//!
//! Thunks are `Send + Sync`: shared ownership is an `Arc<Mutex<…>>`, so a
//! thunk created on one session thread can be forced from another. A force
//! that races an in-flight evaluation **waits** for it (the computation
//! still runs exactly once); a *re-entrant* force from the same thread is a
//! cyclic data dependency in the source program and panics, as before.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::ThreadId;

/// Count of thunks allocated process-wide (runtime-overhead accounting).
static THUNKS_ALLOCATED: AtomicU64 = AtomicU64::new(0);
/// Count of thunk forces that actually ran a delayed computation.
static THUNKS_FORCED: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the global thunk counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThunkCounters {
    /// Thunks allocated since process start.
    pub allocated: u64,
    /// Delayed computations actually executed.
    pub forced: u64,
}

/// Reads the global thunk counters.
pub fn thunk_counters() -> ThunkCounters {
    ThunkCounters {
        allocated: THUNKS_ALLOCATED.load(Ordering::Relaxed),
        forced: THUNKS_FORCED.load(Ordering::Relaxed),
    }
}

enum State<T> {
    /// Not yet evaluated; holds the delayed computation.
    Pending(Box<dyn FnOnce() -> T + Send>),
    /// Being evaluated right now by the recorded thread. Another thread
    /// waits; the same thread panics (cyclic dependency).
    InFlight(ThreadId),
    /// Evaluated; memoized result.
    Forced(T),
    /// The computation panicked. Every force (current waiters and future
    /// callers, on any thread) panics too instead of hanging on a cell
    /// that will never fill.
    Poisoned,
}

struct Cell<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
}

/// Unwind guard for an in-flight evaluation: if the computation panics,
/// the cell is marked poisoned and every waiter is woken (they panic in
/// turn rather than wait forever). Disarmed on the successful path.
struct ForcePoisonGuard<'a, T> {
    cell: &'a Cell<T>,
    armed: bool,
}

impl<T> Drop for ForcePoisonGuard<'_, T> {
    fn drop(&mut self) {
        if self.armed {
            let mut guard = self
                .cell
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            *guard = State::Poisoned;
            drop(guard);
            self.cell.ready.notify_all();
        }
    }
}

/// A delayed, memoized, shareable computation (`Send + Sync`).
pub struct Thunk<T> {
    cell: Arc<Cell<T>>,
}

impl<T> Clone for Thunk<T> {
    fn clone(&self) -> Self {
        Thunk {
            cell: Arc::clone(&self.cell),
        }
    }
}

impl<T: Clone + Send + 'static> Thunk<T> {
    /// Delays `f` until the first [`force`](Thunk::force).
    pub fn new(f: impl FnOnce() -> T + Send + 'static) -> Self {
        THUNKS_ALLOCATED.fetch_add(1, Ordering::Relaxed);
        Thunk {
            cell: Arc::new(Cell {
                state: Mutex::new(State::Pending(Box::new(f))),
                ready: Condvar::new(),
            }),
        }
    }

    /// An already-evaluated thunk (the paper's `LiteralThunk`, used to wrap
    /// results flowing back from external code — §3.4).
    pub fn ready(value: T) -> Self {
        THUNKS_ALLOCATED.fetch_add(1, Ordering::Relaxed);
        Thunk {
            cell: Arc::new(Cell {
                state: Mutex::new(State::Forced(value)),
                ready: Condvar::new(),
            }),
        }
    }

    /// Evaluates the thunk (once) and returns a clone of the result.
    ///
    /// A concurrent force from another thread blocks until the in-flight
    /// evaluation finishes — the computation runs exactly once no matter
    /// how many threads share the thunk.
    ///
    /// # Panics
    /// Panics on re-entrant forcing from the same thread (a thunk whose
    /// computation forces itself), which would be a cyclic data dependency
    /// in the source program — and on forcing a thunk whose computation
    /// panicked on an earlier force (the cell is poisoned, never filled).
    pub fn force(&self) -> T {
        let mut guard = self
            .cell
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let f = loop {
            match &*guard {
                State::Forced(v) => return v.clone(),
                State::Poisoned => panic!("thunk computation panicked on an earlier force"),
                State::InFlight(tid) if *tid == std::thread::current().id() => {
                    panic!("re-entrant thunk force: cyclic dependency")
                }
                State::InFlight(_) => {
                    guard = self
                        .cell
                        .ready
                        .wait(guard)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                State::Pending(_) => {
                    let taken = std::mem::replace(
                        &mut *guard,
                        State::InFlight(std::thread::current().id()),
                    );
                    match taken {
                        State::Pending(f) => break f,
                        _ => unreachable!("matched Pending above"),
                    }
                }
            }
        };
        drop(guard);
        THUNKS_FORCED.fetch_add(1, Ordering::Relaxed);
        // The computation runs outside the lock: it may allocate and force
        // other thunks freely (only forcing *this* cell again is cyclic).
        // If it panics, the guard poisons the cell and wakes every waiter
        // so no thread is left hanging on a cell that will never fill.
        let mut poison = ForcePoisonGuard {
            cell: &self.cell,
            armed: true,
        };
        let v = f();
        poison.armed = false;
        let mut guard = self
            .cell
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *guard = State::Forced(v.clone());
        drop(guard);
        self.cell.ready.notify_all();
        v
    }

    /// Whether the thunk has been evaluated.
    pub fn is_forced(&self) -> bool {
        matches!(
            &*self
                .cell
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
            State::Forced(_)
        )
    }

    /// A new thunk applying `f` to this thunk's (lazily forced) value.
    pub fn map<U: Clone + Send + 'static>(
        &self,
        f: impl FnOnce(T) -> U + Send + 'static,
    ) -> Thunk<U> {
        let this = self.clone();
        Thunk::new(move || f(this.force()))
    }

    /// Combines two thunks lazily.
    pub fn zip_with<U: Clone + Send + 'static, V: Clone + Send + 'static>(
        &self,
        other: &Thunk<U>,
        f: impl FnOnce(T, U) -> V + Send + 'static,
    ) -> Thunk<V> {
        let a = self.clone();
        let b = other.clone();
        Thunk::new(move || f(a.force(), b.force()))
    }
}

impl<T: Clone + Send + fmt::Debug + 'static> fmt::Debug for Thunk<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &*self
            .cell
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
        {
            State::Forced(v) => write!(f, "Thunk(forced: {v:?})"),
            State::Pending(_) => write!(f, "Thunk(pending)"),
            State::InFlight(_) => write!(f, "Thunk(in-flight)"),
            State::Poisoned => write!(f, "Thunk(poisoned)"),
        }
    }
}

/// A coalesced block of delayed statements with several outputs (§4.3).
///
/// The block body runs once, on the first force of **any** output; all
/// outputs are then filled. This avoids one thunk allocation per temporary
/// in straight-line code.
pub struct ThunkBlock<T: Clone + Send + 'static> {
    body: Thunk<Vec<T>>,
}

impl<T: Clone + Send + 'static> ThunkBlock<T> {
    /// Creates a block whose body produces `n` outputs.
    pub fn new(f: impl FnOnce() -> Vec<T> + Send + 'static) -> Self {
        ThunkBlock {
            body: Thunk::new(f),
        }
    }

    /// The `i`-th output as a thunk; forcing it runs the whole block.
    pub fn output(&self, i: usize) -> Thunk<T> {
        self.body.map(move |vs| {
            vs.get(i)
                .cloned()
                .unwrap_or_else(|| panic!("thunk block has no output {i}"))
        })
    }

    /// Whether the block body has run.
    pub fn is_forced(&self) -> bool {
        self.body.is_forced()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn force_memoizes() {
        let runs = Arc::new(AtomicU32::new(0));
        let r = Arc::clone(&runs);
        let t = Thunk::new(move || {
            r.fetch_add(1, Ordering::SeqCst);
            42
        });
        assert!(!t.is_forced());
        assert_eq!(t.force(), 42);
        assert_eq!(t.force(), 42);
        assert_eq!(runs.load(Ordering::SeqCst), 1);
        assert!(t.is_forced());
    }

    #[test]
    fn clones_share_memoization() {
        let runs = Arc::new(AtomicU32::new(0));
        let r = Arc::clone(&runs);
        let t = Thunk::new(move || {
            r.fetch_add(1, Ordering::SeqCst);
            "hello".to_string()
        });
        let t2 = t.clone();
        assert_eq!(t2.force(), "hello");
        assert_eq!(t.force(), "hello");
        assert_eq!(runs.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn ready_never_runs_anything() {
        let before = thunk_counters().forced;
        let t = Thunk::ready(7);
        assert!(t.is_forced());
        assert_eq!(t.force(), 7);
        assert_eq!(thunk_counters().forced, before);
    }

    #[test]
    fn map_is_lazy() {
        let runs = Arc::new(AtomicU32::new(0));
        let r = Arc::clone(&runs);
        let t = Thunk::new(move || {
            r.fetch_add(1, Ordering::SeqCst);
            10
        });
        let u = t.map(|x| x * 2);
        assert_eq!(runs.load(Ordering::SeqCst), 0);
        assert_eq!(u.force(), 20);
        assert_eq!(runs.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn zip_with_forces_both() {
        let a = Thunk::new(|| 3);
        let b = Thunk::new(|| 4);
        let c = a.zip_with(&b, |x, y| x + y);
        assert_eq!(c.force(), 7);
        assert!(a.is_forced() && b.is_forced());
    }

    #[test]
    fn block_runs_once_for_all_outputs() {
        let runs = Arc::new(AtomicU32::new(0));
        let r = Arc::clone(&runs);
        let block = ThunkBlock::new(move || {
            r.fetch_add(1, Ordering::SeqCst);
            vec![1, 2, 3]
        });
        let o0 = block.output(0);
        let o2 = block.output(2);
        assert_eq!(o2.force(), 3);
        assert!(block.is_forced());
        assert_eq!(o0.force(), 1);
        assert_eq!(runs.load(Ordering::SeqCst), 1);
    }

    #[test]
    #[should_panic(expected = "re-entrant")]
    fn reentrant_force_panics() {
        let cell: Arc<Mutex<Option<Thunk<i32>>>> = Arc::new(Mutex::new(None));
        let c2 = Arc::clone(&cell);
        let t = Thunk::new(move || c2.lock().unwrap().as_ref().unwrap().force());
        *cell.lock().unwrap() = Some(t.clone());
        t.force();
    }

    #[test]
    fn counters_increase() {
        let before = thunk_counters();
        let t = Thunk::new(|| 1);
        t.force();
        let after = thunk_counters();
        assert!(after.allocated > before.allocated);
        assert!(after.forced > before.forced);
    }

    #[test]
    fn thunks_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Thunk<i32>>();
        assert_send_sync::<ThunkBlock<String>>();
    }

    #[test]
    fn panicking_computation_poisons_instead_of_hanging() {
        let t: Thunk<i32> = Thunk::new(|| panic!("boom"));
        let t2 = t.clone();
        // First force panics with the computation's own panic.
        let first = std::thread::spawn(move || t2.force()).join();
        assert!(first.is_err());
        // A later force (any thread) panics too — it must NOT hang waiting
        // for a fill that will never come.
        let t3 = t.clone();
        let second = std::thread::spawn(move || t3.force()).join();
        let err = second.expect_err("second force must panic");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("panicked"), "got: {msg}");
    }

    #[test]
    fn concurrent_forces_run_once() {
        let runs = Arc::new(AtomicU32::new(0));
        let r = Arc::clone(&runs);
        let t = Thunk::new(move || {
            r.fetch_add(1, Ordering::SeqCst);
            // Slow computation: give racers time to pile onto InFlight.
            std::thread::sleep(std::time::Duration::from_millis(20));
            99
        });
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let t = t.clone();
                std::thread::spawn(move || t.force())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 99);
        }
        assert_eq!(runs.load(Ordering::SeqCst), 1, "evaluated exactly once");
    }
}
