//! # sloth-core — the extended lazy evaluation runtime
//!
//! Runtime half of Sloth (Cheung, Madden, Solar-Lezama — SIGMOD 2014):
//!
//! * [`Thunk`] / [`ThunkBlock`] — delayed, memoized, shareable computations
//!   (§3.2, §4.3).
//! * [`QueryStore`] — the batching mechanism (§3.3): reads registered at
//!   thunk-creation time accumulate and ship to the database in **one round
//!   trip** when first demanded; writes and transaction boundaries flush.
//! * [`query_thunk`] — the fusion of the two: a thunk that registers its
//!   SQL eagerly and deserializes its result lazily. This is what the
//!   paper's `find_thunk` JPA extension returns.
//!
//! ```
//! use sloth_core::{query_thunk, QueryStore};
//! use sloth_net::SimEnv;
//!
//! let env = SimEnv::default_env();
//! env.seed_sql("CREATE TABLE p (id INT PRIMARY KEY, name TEXT)").unwrap();
//! env.seed_sql("INSERT INTO p VALUES (1, 'Ada'), (2, 'Grace')").unwrap();
//!
//! let store = QueryStore::new(env.clone());
//! // Two queries registered, zero round trips so far.
//! let ada = query_thunk(&store, "SELECT name FROM p WHERE id = 1", |rs| {
//!     rs.get(0, "name").unwrap().to_string()
//! });
//! let grace = query_thunk(&store, "SELECT name FROM p WHERE id = 2", |rs| {
//!     rs.get(0, "name").unwrap().to_string()
//! });
//! assert_eq!(env.stats().round_trips, 0);
//!
//! // Forcing either one ships both in a single batch.
//! assert_eq!(ada.force(), "Ada");
//! assert_eq!(grace.force(), "Grace");
//! assert_eq!(env.stats().round_trips, 1);
//! ```

#![warn(missing_docs)]

pub mod store;
pub mod thunk;

pub use store::{QueryId, QueryStore, Registration, StoreStats};
pub use thunk::{thunk_counters, Thunk, ThunkBlock, ThunkCounters};

use sloth_sql::ResultSet;

/// Creates a thunk for a database read: the SQL registers with `store`
/// **now** (joining the current batch) and `deserialize` runs when the thunk
/// is forced (§3.3).
///
/// # Panics
/// Forcing the returned thunk panics if the underlying SQL fails to execute;
/// use [`try_query_thunk`] when the caller wants to handle the error.
pub fn query_thunk<T: Clone + Send + 'static>(
    store: &QueryStore,
    sql: impl Into<String>,
    deserialize: impl FnOnce(ResultSet) -> T + Send + 'static,
) -> Thunk<T> {
    let sql = sql.into();
    match store.register(sql.clone()) {
        Ok(id) => {
            let store = store.clone();
            Thunk::new(move || {
                let rs = store
                    .result(id)
                    .unwrap_or_else(|e| panic!("query {sql:?} failed at force time: {e}"));
                deserialize(rs)
            })
        }
        Err(e) => Thunk::new(move || panic!("query {sql:?} failed to register: {e}")),
    }
}

/// Like [`query_thunk`] but surfaces SQL errors as `Result` values.
pub fn try_query_thunk<T: Clone + Send + 'static>(
    store: &QueryStore,
    sql: impl Into<String>,
    deserialize: impl FnOnce(ResultSet) -> T + Send + 'static,
) -> Result<Thunk<Result<T, sloth_sql::SqlError>>, sloth_sql::SqlError> {
    let id = store.register(sql.into())?;
    let store = store.clone();
    Ok(Thunk::new(move || store.result(id).map(deserialize)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sloth_net::SimEnv;

    fn store() -> (SimEnv, QueryStore) {
        let env = SimEnv::default_env();
        env.seed_sql("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
            .unwrap();
        for i in 0..5 {
            env.seed_sql(&format!("INSERT INTO t VALUES ({i}, {})", i * 10))
                .unwrap();
        }
        let s = QueryStore::new(env.clone());
        (env, s)
    }

    #[test]
    fn query_thunk_registers_eagerly_fetches_lazily() {
        let (env, s) = store();
        let t = query_thunk(&s, "SELECT v FROM t WHERE id = 2", |rs| {
            rs.get(0, "v").unwrap().as_i64().unwrap()
        });
        assert_eq!(s.pending_len(), 1, "registered at creation");
        assert_eq!(env.stats().round_trips, 0, "not executed yet");
        assert_eq!(t.force(), 20);
        assert_eq!(env.stats().round_trips, 1);
        // Memoized: no extra trips, no extra deserialization.
        assert_eq!(t.force(), 20);
        assert_eq!(env.stats().round_trips, 1);
    }

    #[test]
    fn fig2_pipeline_two_batches() {
        // Reproduces the paper's Fig. 2: Q1 forced to build Q2/Q3/Q4, which
        // then share one later batch.
        let (env, s) = store();
        let patient = query_thunk(&s, "SELECT v FROM t WHERE id = 1", |rs| {
            rs.get(0, "v").unwrap().as_i64().unwrap()
        });
        // Building the dependent query forces Q1 → batch 1 ships.
        let pid = patient.force();
        assert_eq!(env.stats().round_trips, 1);
        let enc = query_thunk(
            &s,
            format!("SELECT v FROM t WHERE id = {}", pid / 10),
            |rs| rs.len() as i64,
        );
        let visits = query_thunk(&s, format!("SELECT v FROM t WHERE v > {pid}"), |rs| {
            rs.len() as i64
        });
        assert_eq!(s.pending_len(), 2, "Q2 and Q3 batched");
        assert_eq!(env.stats().round_trips, 1, "batch 2 not shipped yet");
        // Rendering the page forces one of them; both ship together.
        let _ = enc.force();
        let _ = visits.force();
        assert_eq!(env.stats().round_trips, 2);
        assert_eq!(s.stats().batch_sizes, vec![1, 2]);
    }

    #[test]
    fn try_query_thunk_surfaces_errors() {
        let (_env, s) = store();
        let t = try_query_thunk(&s, "SELECT v FROM nope WHERE id = 1", |rs| rs.len()).unwrap();
        assert!(t.force().is_err());
    }

    #[test]
    fn unused_thunks_never_cost_a_round_trip() {
        let (env, s) = store();
        let _unused = query_thunk(&s, "SELECT v FROM t WHERE id = 3", |rs| rs.len());
        drop(s);
        assert_eq!(env.stats().round_trips, 0);
    }
}
