//! The **query store** (§3.3): the batching heart of Sloth.
//!
//! Queries are *registered* as the lazily-evaluated program encounters them
//! and accumulate in the current batch. The batch is shipped to the
//! database, in one round trip over the batch driver, when
//!
//! * a registered result is demanded ([`QueryStore::result`]), or
//! * a write that cannot defer is registered — a conflicting `INSERT`,
//!   `UPDATE` or `DELETE`, or DDL, never lingers. Under write deferral
//!   (the default), disjoint writes and **silent transactions** (whole
//!   `BEGIN … COMMIT` blocks) do linger and ride a later flush; a read
//!   conflicting only with a deferred key-exact `UPDATE` is answered
//!   locally from its post-image (read-your-writes).
//!
//! Registering a read identical to one already in the current batch returns
//! the existing [`QueryId`] (in-batch dedup).
//!
//! A store is one **session** (one web request, typically). Stores are
//! `Send + Sync`, and many sessions can be multiplexed onto one shared
//! deployment — either directly ([`QueryStore::new`]) or through a
//! [`Dispatcher`] ([`QueryStore::dispatched`]), which coalesces flushes
//! from concurrent sessions into combined backend dispatches.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Condvar, Mutex};

use sloth_net::{Dispatcher, SimEnv};
use sloth_sql::ast::ColumnType;
use sloth_sql::{
    is_write_sql, normalize, txn_boundary, Footprint, PostImage, ReadShape, ResultSet, SqlError,
    TxnBoundary, TxnFootprint, Value,
};

/// Identifier of a registered query; stable for the life of the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(u64);

/// Batching statistics for one store (one web request, typically).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// `register` calls (including dedup hits).
    pub registered: u64,
    /// Registrations answered by an existing in-batch id (template+params
    /// matching: whitespace / keyword-case variants of the same query
    /// dedup too).
    pub dedup_hits: u64,
    /// Batches shipped to the database.
    pub batches: u64,
    /// Size of every shipped batch, in ship order.
    pub batch_sizes: Vec<usize>,
    /// Batches that were forced out by a write/transaction statement.
    pub write_flushes: u64,
    /// Writes that shipped **in the same round trip** as other pending
    /// statements (write-aware batching; always zero in legacy mode,
    /// where every write ships alone after a separate flush).
    pub write_batched: u64,
    /// Conflict segments across all shipped batches, as found by the
    /// write-aware planner (one per batch when every statement commutes;
    /// see `sloth_sql::footprint`).
    pub segments: u64,
    /// Batches whose execution failed; their queries answer with the batch
    /// error instead of a result.
    pub failed_batches: u64,
    /// Queries of this store answered via a fused group execution in the
    /// batch driver.
    pub fused_queries: u64,
    /// Fused executions that answered ≥ 1 of this store's queries.
    pub fused_groups: u64,
    /// Batches of this store that shared a dispatcher round trip with
    /// another session (always zero without a [`Dispatcher`], and zero at
    /// one client).
    pub coalesced_batches: u64,
    /// Writes left lingering in the pending batch at registration because
    /// their footprint was disjoint from every pending statement —
    /// selective laziness (§3.5–3.6): these cost **no** round trip of
    /// their own. Always zero with write deferral off.
    pub deferred_writes: u64,
    /// Shipped batches consisting entirely of writes — N deferred writes
    /// draining in one round trip instead of N.
    pub write_only_flushes: u64,
    /// Flushes forced because a newly registered statement's footprint
    /// conflicted with a pending **deferred write** (the read-after-write
    /// and write-after-write drain triggers).
    pub conflict_drains: u64,
    /// Times this session dropped from lazy-coalesced to **eager-solo**
    /// dispatch because a flush failed with a transient (fault-layer)
    /// error after the retry budget exhausted. A degraded session ships
    /// every statement immediately, never defers writes, and bypasses
    /// dispatcher coalescing — correctness over batching wins.
    pub degradations: u64,
    /// Silent transactions: `BEGIN … COMMIT` blocks whose boundaries and
    /// interior statements all deferred, so the whole block rode a later
    /// flush as one unit instead of draining the batch twice. Always zero
    /// with write deferral off.
    pub deferred_txns: u64,
    /// Reads answered locally by rewriting a pending read's rows through
    /// the post-images of deferred writes (read-your-writes) instead of
    /// draining the batch. These cost no round trip at all.
    pub ryw_rewrites: u64,
}

impl StoreStats {
    /// Largest batch shipped.
    pub fn max_batch(&self) -> usize {
        self.batch_sizes.iter().copied().max().unwrap_or(0)
    }

    /// Total queries shipped.
    pub fn queries_shipped(&self) -> usize {
        self.batch_sizes.iter().sum()
    }
}

/// A read answered **locally**: its rows come from an identical pending
/// read (`base`) with the post-images of the deferred writes between them
/// overlaid on top — read-your-writes without a drain. Overlays are flat
/// `(column, value)` pairs in write order, values already coerced to the
/// column's declared type exactly as the engine's storage layer would.
#[derive(Clone)]
struct Rewrite {
    base: QueryId,
    overlays: Vec<(String, Value)>,
}

/// An open silent transaction: its `BEGIN` deferred, and statements since
/// accumulate into a union footprint (§ transaction-scoped laziness). A
/// barrier statement inside poisons the block back to eager semantics.
struct OpenTxn {
    /// Tag stamped on member [`PendingStmt`]s so a flush can keep the
    /// block whole (a transaction never splits across dispatches).
    serial: u64,
    fp: TxnFootprint,
}

/// In-batch dedup key: the normalized template plus its extracted literal
/// parameters — so `SELECT v FROM t WHERE id = 1` and
/// `select  v from t where ID = 1` collapse, while `… = 2` does not.
/// SQL the normalizer cannot lex falls back to exact-string identity.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum DedupKey {
    Template(String, Vec<Value>),
    Raw(String),
}

impl DedupKey {
    fn of(sql: &str) -> DedupKey {
        match normalize(sql) {
            Ok(n) => DedupKey::Template(n.template, n.params),
            Err(_) => DedupKey::Raw(sql.to_string()),
        }
    }
}

/// Where this session's flushes go.
#[derive(Clone)]
enum FlushTarget {
    /// Straight to the deployment's batch driver (the single-session
    /// path — bit-identical to the original serial behaviour).
    Direct(SimEnv),
    /// Through the shared dispatcher (multi-session serving): flushes may
    /// coalesce with other sessions' flushes into one round trip.
    Dispatched(Arc<Dispatcher>),
}

/// What one registration did: the id, and whether the statement (a write)
/// was left lingering in the pending batch instead of forcing a flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Registration {
    /// The registered statement's id.
    pub id: QueryId,
    /// `true` iff the statement is a write that was **deferred**: it cost
    /// no round trip yet and its (empty) result — or error — will only
    /// materialize at the next drain. Callers that would immediately
    /// demand a write's result should skip that force when this is set,
    /// or the deferral is undone on the spot.
    pub deferred: bool,
}

/// One statement waiting in the pending batch.
struct PendingStmt {
    id: QueryId,
    sql: String,
    /// Write / transaction-boundary classification (writes only linger
    /// here when write deferral is on and their footprint commutes with
    /// everything pending).
    is_write: bool,
    /// The statement's footprint — materialized only once deferral needs
    /// it (a write is, or is about to be, pending), via the backend's
    /// per-template cache; threaded through the flush into the batch
    /// planner so the dispatched path never re-derives it.
    fp: Option<Footprint>,
    /// Serial of the silent transaction this statement belongs to, if any
    /// — flush admission keeps statements with the same tag together.
    txn: Option<u64>,
}

struct StoreInner {
    pending: Vec<PendingStmt>,
    /// Writes currently lingering in `pending` (deferred writes).
    pending_writes: usize,
    pending_by_key: HashMap<DedupKey, QueryId>,
    results: HashMap<QueryId, Result<ResultSet, SqlError>>,
    /// Reads answered by overlaying deferred post-images on a pending
    /// base read (read-your-writes); resolved lazily in [`QueryStore::result`].
    rewrites: HashMap<QueryId, Rewrite>,
    /// The open silent transaction, if one is accumulating.
    txn: Option<OpenTxn>,
    next_txn: u64,
    /// Bumped on every mutation of `pending` — lets the read-your-writes
    /// planner run its parse/catalog analysis **outside** this lock and
    /// detect a concurrent change on re-entry.
    generation: u64,
    /// Ids drained from `pending` by a flush that has not recorded its
    /// outcome yet. A concurrent [`QueryStore::result`] for one of these
    /// waits on `StoreShared::answered` instead of reporting the id
    /// unknown.
    in_flight: HashSet<QueryId>,
    next_id: u64,
    stats: StoreStats,
    flush_threshold: Option<usize>,
    /// Degraded mode (see [`StoreStats::degradations`]): set when a flush
    /// fails with a transient fault-layer error, never cleared — the
    /// session finishes its request on the safe eager-solo path.
    degraded: bool,
}

struct StoreShared {
    inner: Mutex<StoreInner>,
    /// Signalled whenever a flush records its outcomes (results or
    /// errors) — wakes `result()` callers waiting on an in-flight id.
    answered: Condvar,
}

/// Unwind guard for an in-flight flush: if shipping the batch panics,
/// the drained ids still get a recorded outcome (an error), `in_flight`
/// is cleared and waiters are woken — a panicking flush on one thread
/// must not strand `result()` callers on another. Disarmed on the normal
/// paths, which record outcomes themselves.
///
/// The guard **owns** its id list and is armed at admission time — in the
/// same critical section that moves ids into `in_flight` — so there is no
/// window between admission and ship where a panic could leak an
/// in-flight id and wedge a later `result()` wait.
struct FlushPanicGuard<'a> {
    shared: &'a StoreShared,
    ids: Vec<QueryId>,
    armed: bool,
}

impl<'a> FlushPanicGuard<'a> {
    fn disarmed(shared: &'a StoreShared) -> Self {
        FlushPanicGuard {
            shared,
            ids: Vec::new(),
            armed: false,
        }
    }
}

impl Drop for FlushPanicGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let mut inner = self
                .shared
                .inner
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for id in &self.ids {
                inner.in_flight.remove(id);
                inner
                    .results
                    .insert(*id, Err(SqlError::new("batch flush panicked")));
            }
            drop(inner);
            self.shared.answered.notify_all();
        }
    }
}

/// The query store. Cloning shares the same store (per-request handle);
/// the handle is `Send + Sync`.
#[derive(Clone)]
pub struct QueryStore {
    env: SimEnv,
    target: FlushTarget,
    shared: Arc<StoreShared>,
}

impl QueryStore {
    /// A fresh store bound to a simulated deployment.
    pub fn new(env: SimEnv) -> Self {
        let target = FlushTarget::Direct(env.clone());
        QueryStore::with_target(env, target)
    }

    /// A fresh store whose flushes go through the shared `dispatcher`:
    /// the multi-session serving path. Concurrent sessions' flushes may
    /// coalesce into one backend round trip; a single session behaves
    /// exactly like [`QueryStore::new`].
    pub fn dispatched(dispatcher: Arc<Dispatcher>) -> Self {
        let env = dispatcher.env().clone();
        QueryStore::with_target(env, FlushTarget::Dispatched(dispatcher))
    }

    fn with_target(env: SimEnv, target: FlushTarget) -> Self {
        QueryStore {
            env,
            target,
            shared: Arc::new(StoreShared {
                inner: Mutex::new(StoreInner {
                    pending: Vec::new(),
                    pending_writes: 0,
                    pending_by_key: HashMap::new(),
                    results: HashMap::new(),
                    rewrites: HashMap::new(),
                    txn: None,
                    next_txn: 0,
                    generation: 0,
                    in_flight: HashSet::new(),
                    next_id: 0,
                    stats: StoreStats::default(),
                    flush_threshold: None,
                    degraded: false,
                }),
                answered: Condvar::new(),
            }),
        }
    }

    /// An alternative execution policy from the paper's discussion (§6.7):
    /// ship each batch as soon as it reaches `n` queries instead of waiting
    /// for a force. Bounds per-batch latency at the cost of smaller batches.
    pub fn with_flush_threshold(env: SimEnv, n: usize) -> Self {
        let store = QueryStore::new(env);
        store.lock().flush_threshold = Some(n.max(1));
        store
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, StoreInner> {
        self.shared
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The deployment this store talks to.
    pub fn env(&self) -> &SimEnv {
        &self.env
    }

    /// Registers `sql` with the current batch and returns its id (§3.3
    /// `registerQuery`).
    ///
    /// Reads are deferred and deduplicated against the current batch by
    /// normalized template + parameters (formatting variants of the same
    /// query collapse to one id). Writes and transaction boundaries are
    /// never left lingering: they force the batch out immediately — and
    /// with write-aware batching (the deployment default) the write
    /// **rides that same batch**, so pending reads and the write share
    /// one round trip. The batch executes in registration order on the
    /// server, so the reads observe pre-write state exactly as the
    /// serial program would. In legacy mode
    /// ([`SimEnv::set_write_batching`]`(false)`) the pending batch
    /// flushes first and the write then executes alone in its own round
    /// trip — the old split behaviour the `writebatch` figure compares
    /// against.
    pub fn register(&self, sql: impl Into<String>) -> Result<QueryId, SqlError> {
        self.register_stmt(sql).map(|r| r.id)
    }

    /// [`QueryStore::register`] reporting whether a write was deferred —
    /// the entry point for callers (the lazy interpreter, the ORM
    /// session) that otherwise force a write's empty result immediately
    /// and would undo the deferral doing so.
    pub fn register_stmt(&self, sql: impl Into<String>) -> Result<Registration, SqlError> {
        let sql = sql.into();
        let is_write = is_write_sql(&sql);
        // A degraded session gives up deferral entirely: every statement
        // ships as eagerly as possible on the solo path.
        let deferral = self.env.write_deferral_enabled() && !self.lock().degraded;
        if !is_write {
            return self.register_read(sql, deferral);
        }
        if deferral {
            // Transaction-scoped laziness: `BEGIN` and `COMMIT` are engine
            // no-ops, so instead of acting as barriers they defer as
            // placeholder writes with empty footprints, opening/closing a
            // *silent transaction* whose interior statements union their
            // footprints and travel as one unit.
            match txn_boundary(&sql) {
                Some(TxnBoundary::Begin) => {
                    let mut inner = self.lock();
                    if inner.txn.is_none() {
                        let serial = inner.next_txn;
                        inner.next_txn += 1;
                        inner.txn = Some(OpenTxn {
                            serial,
                            fp: TxnFootprint::new(),
                        });
                        return Ok(self.push_deferred(
                            inner,
                            sql,
                            Footprint::default(),
                            Some(serial),
                        ));
                    }
                    // Nested BEGIN: poison the open block back to the
                    // barrier semantics it had before this relaxation.
                    inner.txn = None;
                    drop(inner);
                }
                Some(TxnBoundary::Commit | TxnBoundary::Rollback) => {
                    let mut inner = self.lock();
                    if let Some(t) = inner.txn.take() {
                        if !t.fp.poisoned() {
                            // Close silently: the whole block is deferred
                            // and rides the next forced flush together.
                            inner.stats.deferred_txns += 1;
                            return Ok(self.push_deferred(
                                inner,
                                sql,
                                Footprint::default(),
                                Some(t.serial),
                            ));
                        }
                    }
                    drop(inner);
                    // No open silent block (or a poisoned one): the
                    // boundary keeps its original barrier semantics.
                }
                None => {
                    // Selective laziness (§3.5–3.6): a write whose
                    // footprint is disjoint from every pending write is
                    // *silent* — the batch executes in registration order,
                    // so pending reads still observe pre-write state — and
                    // it lingers in the batch instead of forcing a flush.
                    let fp = self.env.footprint_of(&sql);
                    if !fp.barrier {
                        let mut inner = self.lock();
                        if let Some(t) = inner.txn.as_mut() {
                            if !t.fp.poisoned() {
                                // In-txn writes defer unconditionally: the
                                // block ships whole, in order, so in-batch
                                // conflicts resolve exactly as serially.
                                t.fp.absorb(&fp);
                                let serial = t.serial;
                                return Ok(self.push_deferred(inner, sql, fp, Some(serial)));
                            }
                        }
                        // Pending statements need footprints to check
                        // against; materialize the missing ones (cached
                        // per template).
                        for i in 0..inner.pending.len() {
                            if inner.pending[i].fp.is_none() {
                                let f = self.env.footprint_of(&inner.pending[i].sql);
                                inner.pending[i].fp = Some(f);
                            }
                        }
                        // Only pending WRITES gate deferral: a write after
                        // a conflicting read may linger, because batches
                        // execute in registration order (the read runs
                        // first server-side, observing pre-write state).
                        let conflicts = inner.pending.iter().any(|p| {
                            p.is_write && p.fp.as_ref().is_none_or(|pf| pf.conflicts_with(&fp))
                        });
                        if !conflicts {
                            return Ok(self.push_deferred(inner, sql, fp, None));
                        }
                        // Write-after-write conflict: it drains the batch
                        // exactly as the write-aware (PR 4) path would —
                        // joining it, one round trip.
                        inner.stats.conflict_drains += 1;
                        drop(inner);
                        return self
                            .register_write_aware(sql, Some(fp))
                            .map(|id| Registration {
                                id,
                                deferred: false,
                            });
                    }
                    // Barriers (DDL, unparseable SQL) conflict with
                    // everything: they poison any open silent block and
                    // fall through to the write-aware join-and-flush,
                    // draining any deferred writes with them.
                    self.lock().txn = None;
                }
            }
        }
        if self.env.write_batching_enabled() {
            return self.register_write_aware(sql, None).map(|id| Registration {
                id,
                deferred: false,
            });
        }
        // Legacy path: flush whatever is pending, then run the write alone.
        self.lock().stats.registered += 1;
        self.flush_internal(true)?;
        let id = {
            let mut inner = self.lock();
            let id = QueryId(inner.next_id);
            inner.next_id += 1;
            inner.pending.push(PendingStmt {
                id,
                sql,
                is_write: true,
                fp: None,
                txn: None,
            });
            inner.generation += 1;
            id
        };
        self.flush_internal(false)?;
        Ok(Registration {
            id,
            deferred: false,
        })
    }

    /// Registers a deferred write (or transaction placeholder) into the
    /// pending batch under the already-held lock. `txn` tags silent
    /// transaction members so flushes keep the block whole.
    fn push_deferred(
        &self,
        mut inner: std::sync::MutexGuard<'_, StoreInner>,
        sql: String,
        fp: Footprint,
        txn: Option<u64>,
    ) -> Registration {
        inner.stats.registered += 1;
        inner.stats.deferred_writes += 1;
        let id = QueryId(inner.next_id);
        inner.next_id += 1;
        inner.pending.push(PendingStmt {
            id,
            sql,
            is_write: true,
            fp: Some(fp),
            txn,
        });
        inner.pending_writes += 1;
        inner.generation += 1;
        Registration { id, deferred: true }
    }

    /// The read registration path: dedup, read-your-writes rewriting,
    /// in-transaction lingering, and the conservative conflict drain.
    fn register_read(&self, sql: String, deferral: bool) -> Result<Registration, SqlError> {
        let key = DedupKey::of(&sql);
        // What to do after leaving the critical section.
        enum After {
            Done(Registration),
            Flush(Registration),
            /// Dedup base found but deferred writes after it conflict:
            /// attempt a local rewrite, with the parse/catalog analysis
            /// outside the lock (it takes the catalog read lock, which
            /// must never nest under the store lock — the non-blocking
            /// observability contract).
            Analyze {
                base: QueryId,
                generation: u64,
                writes: Vec<String>,
            },
        }
        loop {
            let after = {
                let mut inner = self.lock();
                let in_txn = deferral && inner.txn.as_ref().is_some_and(|t| !t.fp.poisoned());
                if let Some(&base) = inner.pending_by_key.get(&key) {
                    // Dedup hit candidate. Sound only when no deferred
                    // write positioned AFTER the base conflicts with the
                    // read — then both positions observe identical rows
                    // (batches execute in registration order).
                    let mut conflicting: Vec<String> = Vec::new();
                    if deferral && inner.pending_writes > 0 {
                        let f = self.env.footprint_of(&sql);
                        let base_pos = inner
                            .pending
                            .iter()
                            .position(|p| p.id == base)
                            .expect("dedup key maps to a pending statement");
                        conflicting = inner.pending[base_pos + 1..]
                            .iter()
                            .filter(|p| {
                                p.is_write && p.fp.as_ref().is_none_or(|w| w.conflicts_with(&f))
                            })
                            .map(|p| p.sql.clone())
                            .collect();
                    }
                    if conflicting.is_empty() {
                        inner.stats.registered += 1;
                        inner.stats.dedup_hits += 1;
                        return Ok(Registration {
                            id: base,
                            deferred: false,
                        });
                    }
                    After::Analyze {
                        base,
                        generation: inner.generation,
                        writes: conflicting,
                    }
                } else {
                    // Fresh read. Selective laziness: it may only join a
                    // batch with deferred writes aboard when it provably
                    // cannot observe them — unless it is inside a silent
                    // transaction, which always lingers whole.
                    let mut fp = None;
                    let mut conflicts = false;
                    if deferral && (inner.pending_writes > 0 || in_txn) {
                        let f = self.env.footprint_of(&sql);
                        conflicts = inner.pending.iter().any(|p| {
                            p.is_write && p.fp.as_ref().is_none_or(|w| w.conflicts_with(&f))
                        });
                        fp = Some(f);
                    }
                    inner.stats.registered += 1;
                    let id = QueryId(inner.next_id);
                    inner.next_id += 1;
                    inner.pending_by_key.insert(key.clone(), id);
                    let txn_tag = if in_txn {
                        inner.txn.as_ref().map(|t| t.serial)
                    } else {
                        None
                    };
                    inner.pending.push(PendingStmt {
                        id,
                        sql: sql.clone(),
                        is_write: false,
                        fp: fp.clone(),
                        txn: txn_tag,
                    });
                    inner.generation += 1;
                    let reg = Registration {
                        id,
                        deferred: false,
                    };
                    if in_txn {
                        // In-txn reads linger even across conflicts: the
                        // block drains in one in-order batch, so the read
                        // observes the txn's earlier writes exactly as the
                        // serial program would.
                        if let (Some(t), Some(f)) = (inner.txn.as_mut(), fp.as_ref()) {
                            t.fp.absorb(f);
                        }
                        After::Done(reg)
                    } else if conflicts {
                        inner.stats.conflict_drains += 1;
                        After::Flush(reg)
                    } else if inner.degraded
                        || inner
                            .flush_threshold
                            .map(|n| inner.pending.len() >= n)
                            .unwrap_or(false)
                    {
                        // Degraded sessions ship every read immediately.
                        After::Flush(reg)
                    } else {
                        After::Done(reg)
                    }
                }
            };
            match after {
                After::Done(reg) => return Ok(reg),
                After::Flush(reg) => {
                    self.flush_internal(false)?;
                    return Ok(reg);
                }
                After::Analyze {
                    base,
                    generation,
                    writes,
                } => {
                    let overlays = self.plan_rewrite(&sql, &writes);
                    let mut inner = self.lock();
                    if inner.generation != generation {
                        // Pending changed while we analyzed: start over.
                        continue;
                    }
                    if let Some(overlays) = overlays {
                        // Read-your-writes: answer locally from the base
                        // read plus the writes' post-images — no drain, no
                        // round trip. The rewritten id is virtual (never
                        // pending, never a dedup target).
                        inner.stats.registered += 1;
                        inner.stats.ryw_rewrites += 1;
                        let id = QueryId(inner.next_id);
                        inner.next_id += 1;
                        inner.rewrites.insert(id, Rewrite { base, overlays });
                        return Ok(Registration {
                            id,
                            deferred: false,
                        });
                    }
                    // Conservative fallback: not key-exact enough to
                    // rewrite. Register the read and drain the batch (the
                    // read riding it, so it is still one round trip) —
                    // unless a silent transaction is open, which lingers.
                    let in_txn = deferral && inner.txn.as_ref().is_some_and(|t| !t.fp.poisoned());
                    inner.stats.registered += 1;
                    let id = QueryId(inner.next_id);
                    inner.next_id += 1;
                    let f = self.env.footprint_of(&sql);
                    let txn_tag = if in_txn {
                        inner.txn.as_ref().map(|t| t.serial)
                    } else {
                        None
                    };
                    inner.pending.push(PendingStmt {
                        id,
                        sql: sql.clone(),
                        is_write: false,
                        fp: Some(f.clone()),
                        txn: txn_tag,
                    });
                    inner.generation += 1;
                    if in_txn {
                        if let Some(t) = inner.txn.as_mut() {
                            t.fp.absorb(&f);
                        }
                        return Ok(Registration {
                            id,
                            deferred: false,
                        });
                    }
                    inner.stats.conflict_drains += 1;
                    drop(inner);
                    self.flush_internal(false)?;
                    return Ok(Registration {
                        id,
                        deferred: false,
                    });
                }
            }
        }
    }

    /// Plans a read-your-writes rewrite for `sql` against the pending
    /// deferred writes (in order) that conflict with it: `Some(overlays)`
    /// iff **every** write is a key-exact literal `UPDATE` whose
    /// post-image fully determines the read's rows. Values are coerced to
    /// the declared column type exactly as the engine's storage layer
    /// would, so the overlaid rows are byte-identical to a real drain.
    /// Runs without the store lock (parses + catalog reads).
    fn plan_rewrite(&self, sql: &str, writes: &[String]) -> Option<Vec<(String, Value)>> {
        let shape = ReadShape::of_sql(sql)?;
        let mut overlays = Vec::new();
        for wsql in writes {
            let post = PostImage::of_sql(wsql)?;
            if !shape.covered_by(&post) {
                return None;
            }
            for (col, val) in post.sets {
                let ty = self.env.column_type(&post.table, &col)?;
                let val = match (ty, &val) {
                    (ColumnType::Float, Value::Int(i)) => Value::Float(*i as f64),
                    (ColumnType::Int, Value::Float(f)) => Value::Int(*f as i64),
                    _ => val,
                };
                overlays.push((col, val));
            }
        }
        Some(overlays)
    }

    /// The write-aware (PR 4) write path: the write joins the pending
    /// batch and the whole thing ships as ONE round trip.
    fn register_write_aware(
        &self,
        sql: String,
        fp: Option<Footprint>,
    ) -> Result<QueryId, SqlError> {
        let (id, had_pending) = {
            let mut inner = self.lock();
            inner.stats.registered += 1;
            let had_pending = !inner.pending.is_empty();
            let id = QueryId(inner.next_id);
            inner.next_id += 1;
            let is_write = true;
            inner.pending.push(PendingStmt {
                id,
                sql,
                is_write,
                fp,
                txn: None,
            });
            inner.pending_writes += 1;
            inner.generation += 1;
            (id, had_pending)
        };
        self.flush_internal(had_pending)?;
        if had_pending {
            // Counted only once the combined batch actually shipped:
            // `write_batched` means "writes that shared a successful
            // round trip", and a failed flush records failed_batches.
            self.lock().stats.write_batched += 1;
        }
        Ok(id)
    }

    /// Returns the result set for `id` (§3.3 `getResultSet`), shipping the
    /// current batch first if the result is not yet cached.
    ///
    /// If the batch that carried `id` failed, this returns that batch's
    /// error (annotated with the query) — not "unknown query id".
    ///
    /// Stores are `Send + Sync`: if another thread's flush is mid-flight
    /// with this id on board, this call waits for that flush's outcome
    /// instead of misreporting the id as unknown.
    pub fn result(&self, id: QueryId) -> Result<ResultSet, SqlError> {
        let rewrite = self.lock().rewrites.get(&id).cloned();
        if let Some(rw) = rewrite {
            // Read-your-writes: resolve the base read (itself possibly
            // still lazy) and overlay the deferred post-images in write
            // order. A failed base propagates its error — the rewritten
            // read would have died on the same batch.
            let mut rs = self.result(rw.base)?;
            for (col, val) in &rw.overlays {
                let idxs: Vec<usize> = rs
                    .columns
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.eq_ignore_ascii_case(col))
                    .map(|(i, _)| i)
                    .collect();
                for ci in idxs {
                    for row in &mut rs.rows {
                        row[ci] = val.clone();
                    }
                }
            }
            return Ok(rs);
        }
        {
            let mut inner = self.lock();
            loop {
                if let Some(r) = inner.results.get(&id) {
                    return r.clone();
                }
                if !inner.in_flight.contains(&id) {
                    break;
                }
                inner = self
                    .shared
                    .answered
                    .wait(inner)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
        self.flush_internal(false).ok(); // per-id outcome recorded below either way
        let mut inner = self.lock();
        loop {
            if let Some(r) = inner.results.get(&id) {
                return r.clone();
            }
            if !inner.in_flight.contains(&id) {
                return Err(SqlError::new(format!("unknown query id {id:?}")));
            }
            inner = self
                .shared
                .answered
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Ships the current batch (if any) without demanding a result —
    /// draining any deferred writes with it.
    pub fn flush(&self) -> Result<(), SqlError> {
        self.flush_internal(false)
    }

    /// Ships the **deferred writes** lingering in the pending batch (one
    /// round trip for all of them), leaving pending reads lazy where that
    /// is sound. The shipped set preserves registration order and closes
    /// over it: silent-transaction members travel with their block (a
    /// transaction never splits across dispatches), and a read that
    /// precedes a shipping write it conflicts with rides too — shipping
    /// the write around it would let the write overtake. Disjoint reads
    /// stay behind, still lazy. This is the end-of-request hook — a page
    /// whose last statements are writes must not leave them unexecuted,
    /// but must not force its dead reads either (never-demanded queries
    /// never running is the point of the paper).
    pub fn flush_deferred_writes(&self) -> Result<(), SqlError> {
        // The guard lives OUTSIDE the admission critical section (drop
        // order: the lock guard releases before this unwinds), but is
        // armed inside it — admission and arming are atomic.
        let mut guard = FlushPanicGuard::disarmed(&self.shared);
        let drained: Vec<PendingStmt> = {
            let mut inner = self.lock();
            if inner.pending_writes == 0 {
                return Ok(());
            }
            // End of request: an unclosed silent transaction ships whole
            // (its members are tagged and travel together).
            inner.txn = None;
            // The ride-along decision needs every footprint.
            for i in 0..inner.pending.len() {
                if inner.pending[i].fp.is_none() {
                    let f = self.env.footprint_of(&inner.pending[i].sql);
                    inner.pending[i].fp = Some(f);
                }
            }
            let n = inner.pending.len();
            let mut ship = vec![false; n];
            for (i, p) in inner.pending.iter().enumerate() {
                if p.is_write || p.txn.is_some() {
                    ship[i] = true;
                }
            }
            // Right to left: a kept read must not conflict with any LATER
            // shipping write, or the drain would reorder them.
            let mut later_write_fps: Vec<Footprint> = Vec::new();
            for i in (0..n).rev() {
                let p = &inner.pending[i];
                let f = p.fp.clone().expect("materialized above");
                if ship[i] {
                    if p.is_write {
                        later_write_fps.push(f);
                    }
                } else if later_write_fps.iter().any(|w| w.conflicts_with(&f)) {
                    ship[i] = true;
                }
            }
            let all: Vec<PendingStmt> = inner.pending.drain(..).collect();
            let mut drained = Vec::new();
            let mut kept = Vec::new();
            for (i, p) in all.into_iter().enumerate() {
                if ship[i] {
                    drained.push(p);
                } else {
                    kept.push(p);
                }
            }
            inner.pending = kept;
            inner.pending_writes = 0;
            inner.generation += 1;
            let keep_ids: HashSet<QueryId> = inner.pending.iter().map(|p| p.id).collect();
            inner.pending_by_key.retain(|_, id| keep_ids.contains(id));
            guard.armed = true;
            for p in &drained {
                guard.ids.push(p.id);
                inner.in_flight.insert(p.id);
            }
            drained
        };
        self.ship(drained, guard, false)
    }

    fn flush_internal(&self, caused_by_write: bool) -> Result<(), SqlError> {
        let mut guard = FlushPanicGuard::disarmed(&self.shared);
        let drained: Vec<PendingStmt> = {
            let mut inner = self.lock();
            if inner.pending.is_empty() {
                return Ok(());
            }
            inner.pending_by_key.clear();
            inner.pending_writes = 0;
            inner.generation += 1;
            let drained: Vec<PendingStmt> = inner.pending.drain(..).collect();
            guard.armed = true;
            for p in &drained {
                guard.ids.push(p.id);
                inner.in_flight.insert(p.id);
            }
            drained
        };
        self.ship(drained, guard, caused_by_write)
    }

    /// Ships an already-drained batch and records per-id outcomes.
    /// `panic_guard` was armed at admission (its ids are the drained ids,
    /// already in `in_flight`).
    fn ship(
        &self,
        drained: Vec<PendingStmt>,
        mut panic_guard: FlushPanicGuard<'_>,
        caused_by_write: bool,
    ) -> Result<(), SqlError> {
        let all_writes = drained.iter().all(|p| p.is_write);
        let have_all_fps = drained.iter().all(|p| p.fp.is_some());
        // Thread the footprints the register path already derived into
        // the batch planner (they are complete exactly when a write is
        // aboard under deferral — the only time the planner needs them).
        // One destructuring pass by move: no footprint clones on the
        // flush path.
        let mut ids = Vec::with_capacity(drained.len());
        let mut sqls = Vec::with_capacity(drained.len());
        let mut fps = Vec::with_capacity(if have_all_fps { drained.len() } else { 0 });
        for p in drained {
            ids.push(p.id);
            sqls.push(p.sql);
            if have_all_fps {
                fps.push(p.fp.expect("checked"));
            }
        }
        let footprints: Option<Vec<Footprint>> = have_all_fps.then_some(fps);
        let degraded = self.lock().degraded;
        // Per-batch fusion attribution comes back with the outcome itself
        // (not from deployment-wide counter deltas, which other sessions
        // mutate concurrently). The direct path ships with **partial
        // semantics**: statements the server executed before a failure
        // keep their results — a read that rode a batch whose later write
        // failed still answers with its rows, exactly as it would have
        // serially. (Through a dispatcher only the whole-flush error is
        // available, so there every id of a failed flush reports it.)
        let (results, error, fused_queries, fused_groups, coalesced, segments) = match &self.target
        {
            FlushTarget::Direct(env) => {
                // A degraded session no longer trusts the shared result
                // cache's hit path — an earlier batch of its own died
                // with ambiguous writes — so it ships uncached (its
                // writes still invalidate other sessions' entries).
                let p = if degraded {
                    env.query_batch_partial_uncached_with(&sqls, footprints.as_deref())
                } else {
                    env.query_batch_partial_with(&sqls, footprints.as_deref())
                };
                (
                    p.results,
                    p.error.map(|(_, e)| e),
                    p.fused_queries,
                    p.fused_groups,
                    false,
                    p.segments,
                )
            }
            FlushTarget::Dispatched(d) => match if degraded {
                // Degraded sessions bypass the coalescing queue: solo
                // dispatch, footprints threaded through so even this path
                // never re-analyzes a statement.
                d.submit_solo(&sqls, footprints.as_deref())
            } else {
                // Thread the register-path footprints through dispatcher
                // admission: a deferred silent transaction's BEGIN/COMMIT
                // placeholders carry empty (non-barrier) footprints, so
                // disjoint transactions from different sessions coalesce
                // instead of dispatching solo as raw-SQL barriers would.
                d.submit_with(&sqls, footprints.as_deref())
            } {
                Ok(r) => (
                    r.results.into_iter().map(Some).collect(),
                    None,
                    r.fused_queries,
                    r.fused_groups,
                    r.coalesced,
                    r.segments,
                ),
                Err(e) => (vec![None; sqls.len()], Some(e), 0, 0, false, 0),
            },
        };
        panic_guard.armed = false;
        {
            let mut inner = self.lock();
            match &error {
                None => {
                    inner.stats.batches += 1;
                    inner.stats.batch_sizes.push(sqls.len());
                    inner.stats.fused_queries += fused_queries;
                    inner.stats.fused_groups += fused_groups;
                    inner.stats.segments += segments;
                    if coalesced {
                        inner.stats.coalesced_batches += 1;
                    }
                    if caused_by_write {
                        inner.stats.write_flushes += 1;
                    }
                    if all_writes {
                        inner.stats.write_only_flushes += 1;
                    }
                }
                Some(e) => {
                    inner.stats.failed_batches += 1;
                    // Graceful degradation: a transient error here means
                    // the retry budget exhausted under faults. Drop the
                    // session to eager-solo dispatch for the rest of its
                    // life — no more deferral, no more coalescing.
                    if sloth_net::is_transient_error(e) && !inner.degraded {
                        inner.degraded = true;
                        // No deferral in degraded mode; any open silent
                        // transaction reverts to barrier semantics.
                        inner.txn = None;
                        inner.stats.degradations += 1;
                    }
                }
            }
            // The pending queries are already drained; every id records an
            // outcome — its real result when the server produced one, the
            // annotated batch error otherwise (never "unknown query id").
            for ((id, sql), res) in ids.iter().zip(sqls.iter()).zip(results) {
                inner.in_flight.remove(id);
                let record = match res {
                    Some(rs) => Ok(rs),
                    None => {
                        let e = error.as_ref().expect("missing result implies batch error");
                        Err(SqlError::new(format!(
                            "batch failed: {e} (while batched: {sql})"
                        )))
                    }
                };
                inner.results.insert(*id, record);
            }
        }
        self.shared.answered.notify_all();
        match error {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Number of queries waiting in the current batch.
    ///
    /// Never blocks behind an in-flight flush: the store's inner lock is
    /// released before a drained batch ships (see [`QueryStore::stats`]).
    pub fn pending_len(&self) -> usize {
        self.lock().pending.len()
    }

    /// Snapshot of the store's batching statistics.
    ///
    /// Non-blocking observability contract: the inner lock is only ever
    /// held for admission and outcome recording, **never across a ship**
    /// — a stats snapshot taken from another thread completes even while
    /// this store's flush is wedged mid-round-trip at the backend. (The
    /// deployment-level counterpart is `SimEnv::stats`, which is
    /// lock-free outright.)
    pub fn stats(&self) -> StoreStats {
        self.lock().stats.clone()
    }

    /// Whether this session has degraded to eager-solo dispatch after a
    /// transient flush failure (see [`StoreStats::degradations`]).
    pub fn degraded(&self) -> bool {
        self.lock().degraded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sloth_net::SimEnv;

    fn env() -> SimEnv {
        let env = SimEnv::default_env();
        env.seed_sql("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
            .unwrap();
        for i in 0..10 {
            env.seed_sql(&format!("INSERT INTO t VALUES ({i}, 'v{i}')"))
                .unwrap();
        }
        env
    }

    #[test]
    fn reads_accumulate_until_result_demanded() {
        let e = env();
        let store = QueryStore::new(e.clone());
        let q1 = store.register("SELECT v FROM t WHERE id = 1").unwrap();
        let q2 = store.register("SELECT v FROM t WHERE id = 2").unwrap();
        let q3 = store.register("SELECT v FROM t WHERE id = 3").unwrap();
        assert_eq!(store.pending_len(), 3);
        assert_eq!(e.stats().round_trips, 0);

        let rs1 = store.result(q1).unwrap();
        assert_eq!(rs1.get(0, "v").unwrap().as_str(), Some("v1"));
        // One round trip shipped all three.
        assert_eq!(e.stats().round_trips, 1);
        assert_eq!(e.stats().queries, 3);
        // Remaining results come from the cache: no further trips.
        store.result(q2).unwrap();
        store.result(q3).unwrap();
        assert_eq!(e.stats().round_trips, 1);
        assert_eq!(store.stats().max_batch(), 3);
    }

    #[test]
    fn stats_snapshot_does_not_block_behind_an_in_flight_flush() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::{mpsc, Arc};
        use std::time::Duration;

        let e = env();
        let store = QueryStore::new(e.clone());
        // A write-containing batch: read-only flushes run on the
        // published snapshot and never wedge behind the write lock.
        store.register("UPDATE t SET v = 'w' WHERE id = 1").unwrap();

        // Wedge the flush mid-ship at the backend.
        let db = e.database();
        let wedge = db.write().unwrap();
        let done = Arc::new(AtomicBool::new(false));
        let flusher = {
            let store = store.clone();
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                store.flush().unwrap();
                done.store(true, Ordering::SeqCst);
            })
        };
        std::thread::sleep(Duration::from_millis(50));
        assert!(!done.load(Ordering::SeqCst), "flush must be wedged");

        // The inner lock is not held across the ship: stats and
        // pending_len answer on a bounded timeout while the flush waits.
        let (tx, rx) = mpsc::channel();
        {
            let store = store.clone();
            std::thread::spawn(move || {
                tx.send((store.stats(), store.pending_len())).unwrap();
            });
        }
        let (stats, pending) = rx
            .recv_timeout(Duration::from_secs(5))
            .expect("stats must not block behind an in-flight flush");
        assert_eq!(stats.batches, 0, "the wedged flush has not landed");
        assert_eq!(pending, 0, "the batch was drained at admission");
        assert!(!done.load(Ordering::SeqCst));

        drop(wedge);
        flusher.join().unwrap();
        assert_eq!(store.stats().batches, 1);
    }

    /// Tentpole regression (reader-wedge, store layer): a read-only
    /// flush must complete with bounded latency while another thread
    /// holds the database write lock mid-batch — the store's drain path
    /// rides the driver's snapshot reads, so a stalled writer cannot
    /// stall page rendering.
    #[test]
    fn read_only_flush_completes_while_writer_holds_the_db() {
        use std::sync::mpsc;
        use std::time::Duration;

        let e = env();
        let store = QueryStore::new(e.clone());
        let q = store.register("SELECT v FROM t WHERE id = 1").unwrap();

        // Hold the write lock with an uncommitted mutation in place.
        let db = e.database();
        let mut wedge = db.write().unwrap();
        wedge
            .execute("UPDATE t SET v = 'dirty' WHERE id = 1")
            .unwrap();

        let (tx, rx) = mpsc::channel();
        {
            let store = store.clone();
            std::thread::spawn(move || {
                tx.send(store.result(q).unwrap()).unwrap();
            });
        }
        let rs = rx
            .recv_timeout(Duration::from_secs(5))
            .expect("read-only flush must not block behind the held write lock");
        assert_eq!(
            rs.get(0, "v").unwrap().as_str(),
            Some("v1"),
            "the drain observed the last committed state"
        );
        assert!(
            e.stats().snapshot_batches >= 1,
            "drain used the snapshot path"
        );
        drop(wedge);
    }

    #[test]
    fn in_batch_dedup_returns_same_id() {
        let store = QueryStore::new(env());
        let a = store.register("SELECT v FROM t WHERE id = 1").unwrap();
        let b = store.register("SELECT v FROM t WHERE id = 1").unwrap();
        assert_eq!(a, b);
        assert_eq!(store.pending_len(), 1);
        assert_eq!(store.stats().dedup_hits, 1);
    }

    #[test]
    fn dedup_resets_after_flush() {
        let store = QueryStore::new(env());
        let a = store.register("SELECT v FROM t WHERE id = 1").unwrap();
        store.flush().unwrap();
        let b = store.register("SELECT v FROM t WHERE id = 1").unwrap();
        assert_ne!(a, b, "dedup is per batch, as in the paper");
    }

    #[test]
    fn writes_defer_across_conflicting_reads() {
        // A write conflicting only with pending READS defers: batches
        // execute in registration order server-side, so the earlier read
        // still observes pre-write state when the batch drains.
        let e = env();
        let store = QueryStore::new(e.clone());
        let r1 = store.register("SELECT v FROM t WHERE id = 1").unwrap();
        store.register("SELECT v FROM t WHERE id = 2").unwrap();
        let w = store
            .register_stmt("UPDATE t SET v = 'x' WHERE id = 1")
            .unwrap();
        assert!(w.deferred, "read-only conflicts no longer force a flush");
        assert_eq!(e.stats().round_trips, 0);
        assert_eq!(store.pending_len(), 3);
        // Demanding the read drains everything in ONE round trip; the
        // read registered before the write observes pre-write state.
        assert_eq!(
            store.result(r1).unwrap().get(0, "v").unwrap().as_str(),
            Some("v1")
        );
        assert_eq!(e.stats().round_trips, 1);
        // The write's (empty) result is available without further trips.
        let rs = store.result(w.id).unwrap();
        assert!(rs.is_empty());
        assert_eq!(e.stats().round_trips, 1);
        // The conflict analysis saw two segments: the reads (one of which
        // touches the written row) and the write.
        assert_eq!(store.stats().segments, 2);
        assert_eq!(store.stats().deferred_writes, 1);
    }

    #[test]
    fn writes_flush_pending_batch_without_deferral() {
        // With deferral off, the PR 4 write-aware contract is unchanged:
        // the write joins the pending reads and forces one round trip.
        let e = env();
        e.set_write_deferral(false);
        let store = QueryStore::new(e.clone());
        let r1 = store.register("SELECT v FROM t WHERE id = 1").unwrap();
        store.register("SELECT v FROM t WHERE id = 2").unwrap();
        let w = store.register("UPDATE t SET v = 'x' WHERE id = 1").unwrap();
        assert_eq!(e.stats().round_trips, 1);
        assert_eq!(store.pending_len(), 0);
        assert_eq!(store.stats().write_flushes, 1);
        assert_eq!(store.stats().write_batched, 1);
        assert_eq!(
            store.result(r1).unwrap().get(0, "v").unwrap().as_str(),
            Some("v1")
        );
        let rs = store.result(w).unwrap();
        assert!(rs.is_empty());
        assert_eq!(e.stats().round_trips, 1);
        assert_eq!(store.stats().segments, 2);
    }

    #[test]
    fn legacy_mode_splits_writes_into_their_own_trip() {
        let e = env();
        e.set_write_batching(false);
        let store = QueryStore::new(e.clone());
        store.register("SELECT v FROM t WHERE id = 1").unwrap();
        let w = store.register("UPDATE t SET v = 'x' WHERE id = 1").unwrap();
        // Legacy: the flushed reads, then the write alone.
        assert_eq!(e.stats().round_trips, 2);
        assert_eq!(store.stats().write_flushes, 1);
        assert_eq!(store.stats().write_batched, 0);
        assert!(store.result(w).unwrap().is_empty());
    }

    #[test]
    fn transaction_boundaries_flush() {
        let e = env();
        let store = QueryStore::new(e.clone());
        store.register("SELECT v FROM t WHERE id = 1").unwrap();
        store.register("COMMIT").unwrap();
        // The boundary rides the same round trip as the pending read.
        assert_eq!(e.stats().round_trips, 1);
        assert_eq!(store.pending_len(), 0);
    }

    #[test]
    fn result_of_unknown_id_errors() {
        let store = QueryStore::new(env());
        let bogus = QueryId(999);
        assert!(store.result(bogus).is_err());
    }

    #[test]
    fn flush_on_empty_is_noop() {
        let e = env();
        let store = QueryStore::new(e.clone());
        store.flush().unwrap();
        assert_eq!(e.stats().round_trips, 0);
    }

    #[test]
    fn batch_sizes_recorded_in_order() {
        let store = QueryStore::new(env());
        store.register("SELECT v FROM t WHERE id = 1").unwrap();
        store.register("SELECT v FROM t WHERE id = 2").unwrap();
        store.flush().unwrap();
        store.register("SELECT v FROM t WHERE id = 3").unwrap();
        store.flush().unwrap();
        assert_eq!(store.stats().batch_sizes, vec![2, 1]);
        assert_eq!(store.stats().queries_shipped(), 3);
    }

    #[test]
    fn flush_threshold_ships_eagerly() {
        let e = env();
        let store = QueryStore::with_flush_threshold(e.clone(), 3);
        for i in 0..7 {
            store
                .register(format!("SELECT v FROM t WHERE id = {i}"))
                .unwrap();
        }
        // Batches of 3 ship automatically; one remainder stays pending.
        assert_eq!(store.stats().batch_sizes, vec![3, 3]);
        assert_eq!(store.pending_len(), 1);
        assert_eq!(e.stats().round_trips, 2);
    }

    #[test]
    fn threshold_one_degenerates_to_immediate() {
        let e = env();
        let store = QueryStore::with_flush_threshold(e.clone(), 1);
        store.register("SELECT v FROM t WHERE id = 1").unwrap();
        store.register("SELECT v FROM t WHERE id = 2").unwrap();
        assert_eq!(e.stats().round_trips, 2, "every query ships alone");
    }

    #[test]
    fn error_in_batch_propagates() {
        let store = QueryStore::new(env());
        store
            .register("SELECT v FROM missing_table WHERE id = 1")
            .unwrap();
        assert!(store.flush().is_err());
    }

    #[test]
    fn failed_batch_queries_answer_with_batch_error() {
        let store = QueryStore::new(env());
        let good = store.register("SELECT v FROM t WHERE id = 1").unwrap();
        let bad = store
            .register("SELECT v FROM missing_table WHERE id = 1")
            .unwrap();
        assert!(store.flush().is_err());
        assert_eq!(store.stats().failed_batches, 1);
        assert_eq!(
            store.stats().batches,
            0,
            "failed batches are counted separately"
        );
        // Partial semantics: the statement the server executed before the
        // failure keeps its result — exactly as it would have serially.
        let rs = store.result(good).unwrap();
        assert_eq!(rs.get(0, "v").unwrap().as_str(), Some("v1"));
        // The failing statement (and anything after it) gets the batch
        // error — never "unknown query id".
        let err = store.result(bad).unwrap_err();
        assert!(err.to_string().contains("batch failed"), "got: {err}");
        assert!(!err.to_string().contains("unknown query id"));
        // Ids that never existed still say so.
        let bogus = QueryId(999);
        assert!(store
            .result(bogus)
            .unwrap_err()
            .to_string()
            .contains("unknown query id"));
    }

    #[test]
    fn failed_write_does_not_poison_earlier_reads() {
        // A read rides the batch its (failing) write forces: the read
        // still answers with its rows, the write with the error — the
        // serial program's observable behaviour exactly. (Deferral off:
        // with deferral on, a disjoint failing write defers and its error
        // surfaces at the drain instead — see the deferral tests.)
        let e = env();
        e.set_write_deferral(false);
        let store = QueryStore::new(e);
        let read = store.register("SELECT v FROM t WHERE id = 1").unwrap();
        let write = store.register("UPDATE missing SET v = 'x' WHERE id = 1");
        assert!(write.is_err(), "register surfaces the write's flush error");
        assert_eq!(
            store.result(read).unwrap().get(0, "v").unwrap().as_str(),
            Some("v1"),
            "the executed read must not report the write's error"
        );
        // Legacy mode behaves identically here (reads flush first).
        let legacy_env = env();
        legacy_env.set_write_batching(false);
        let legacy = QueryStore::new(legacy_env);
        let read = legacy.register("SELECT v FROM t WHERE id = 1").unwrap();
        assert!(legacy
            .register("UPDATE missing SET v = 'x' WHERE id = 1")
            .is_err());
        assert_eq!(
            legacy.result(read).unwrap().get(0, "v").unwrap().as_str(),
            Some("v1")
        );
    }

    #[test]
    fn disjoint_writes_defer_and_drain_in_one_round_trip() {
        // N consecutive disjoint writes: ZERO round trips at registration,
        // ONE when drained — the selective-laziness headline.
        let e = env();
        let store = QueryStore::new(e.clone());
        let regs: Vec<_> = (0..4)
            .map(|i| {
                store
                    .register_stmt(format!("UPDATE t SET v = 'w{i}' WHERE id = {i}"))
                    .unwrap()
            })
            .collect();
        assert!(
            regs.iter().all(|r| r.deferred),
            "all four disjoint writes defer"
        );
        assert_eq!(e.stats().round_trips, 0, "no round trip yet");
        assert_eq!(store.pending_len(), 4);
        assert_eq!(store.stats().deferred_writes, 4);
        store.flush().unwrap();
        assert_eq!(e.stats().round_trips, 1, "4 writes → 1 round trip");
        let s = store.stats();
        assert_eq!(s.write_only_flushes, 1);
        assert_eq!(s.batch_sizes, vec![4]);
        // Effects all applied, in order.
        for i in 0..4 {
            let rs = e.query(&format!("SELECT v FROM t WHERE id = {i}")).unwrap();
            assert_eq!(
                rs.get(0, "v").unwrap().as_str(),
                Some(format!("w{i}").as_str())
            );
        }
    }

    #[test]
    fn conflicting_read_drains_deferred_writes() {
        let e = env();
        let store = QueryStore::new(e.clone());
        let w = store
            .register_stmt("UPDATE t SET v = 'dirty' WHERE id = 3")
            .unwrap();
        assert!(w.deferred);
        // A read of an untouched row lingers…
        let r_far = store.register("SELECT v FROM t WHERE id = 7").unwrap();
        assert_eq!(e.stats().round_trips, 0);
        // …but a read of the written row drains the batch, riding it.
        let r_hit = store.register("SELECT v FROM t WHERE id = 3").unwrap();
        assert_eq!(e.stats().round_trips, 1, "conflict drains in one trip");
        assert_eq!(store.pending_len(), 0);
        assert_eq!(store.stats().conflict_drains, 1);
        // Registration order preserved: the read observes the write.
        assert_eq!(
            store.result(r_hit).unwrap().get(0, "v").unwrap().as_str(),
            Some("dirty")
        );
        assert_eq!(
            store.result(r_far).unwrap().get(0, "v").unwrap().as_str(),
            Some("v7")
        );
        assert!(store.result(w.id).unwrap().is_empty());
        assert_eq!(e.stats().round_trips, 1);
    }

    #[test]
    fn conflicting_write_drains_deferred_writes() {
        let e = env();
        let store = QueryStore::new(e.clone());
        assert!(
            store
                .register_stmt("UPDATE t SET v = 'a' WHERE id = 1")
                .unwrap()
                .deferred
        );
        // Same row again: write-after-write conflict → drain, the new
        // write riding the batch (PR 4 join-and-flush semantics).
        let second = store
            .register_stmt("UPDATE t SET v = 'b' WHERE id = 1")
            .unwrap();
        assert!(!second.deferred);
        assert_eq!(e.stats().round_trips, 1);
        let s = store.stats();
        assert_eq!(s.conflict_drains, 1);
        assert_eq!(s.write_batched, 1, "the drain is a shared round trip");
        assert_eq!(
            e.query("SELECT v FROM t WHERE id = 1")
                .unwrap()
                .get(0, "v")
                .unwrap()
                .as_str(),
            Some("b"),
            "in-order execution: the later write wins"
        );
    }

    #[test]
    fn transaction_boundary_drains_deferred_writes_in_one_trip() {
        let e = env();
        let store = QueryStore::new(e.clone());
        for i in 0..3 {
            assert!(
                store
                    .register_stmt(format!("UPDATE t SET v = 'x{i}' WHERE id = {i}"))
                    .unwrap()
                    .deferred
            );
        }
        store.register("COMMIT").unwrap();
        assert_eq!(e.stats().round_trips, 1, "3 writes + COMMIT, one trip");
        assert_eq!(store.stats().write_flushes, 1);
        assert_eq!(store.pending_len(), 0);
    }

    #[test]
    fn force_drains_deferred_writes_with_pending_reads() {
        let e = env();
        let store = QueryStore::new(e.clone());
        let r = store.register("SELECT v FROM t WHERE id = 9").unwrap();
        assert!(
            store
                .register_stmt("UPDATE t SET v = 'z' WHERE id = 2")
                .unwrap()
                .deferred
        );
        // Forcing the (disjoint) read ships read + write together.
        assert_eq!(
            store.result(r).unwrap().get(0, "v").unwrap().as_str(),
            Some("v9")
        );
        assert_eq!(e.stats().round_trips, 1);
        assert_eq!(
            e.query("SELECT v FROM t WHERE id = 2")
                .unwrap()
                .get(0, "v")
                .unwrap()
                .as_str(),
            Some("z")
        );
    }

    #[test]
    fn flush_deferred_writes_leaves_reads_lazy() {
        let e = env();
        let store = QueryStore::new(e.clone());
        let dead = store.register("SELECT v FROM t WHERE id = 5").unwrap();
        assert!(
            store
                .register_stmt("UPDATE t SET v = 'end' WHERE id = 8")
                .unwrap()
                .deferred
        );
        store.flush_deferred_writes().unwrap();
        assert_eq!(e.stats().round_trips, 1);
        assert_eq!(e.stats().queries, 1, "only the write shipped");
        assert_eq!(store.pending_len(), 1, "the dead read stays lazy");
        assert_eq!(store.stats().write_only_flushes, 1);
        // The write applied; the read still answers if demanded later.
        assert_eq!(
            e.query("SELECT v FROM t WHERE id = 8")
                .unwrap()
                .get(0, "v")
                .unwrap()
                .as_str(),
            Some("end")
        );
        assert_eq!(
            store.result(dead).unwrap().get(0, "v").unwrap().as_str(),
            Some("v5")
        );
        // No deferred writes → no-op.
        let trips = e.stats().round_trips;
        store.flush_deferred_writes().unwrap();
        assert_eq!(e.stats().round_trips, trips);
    }

    #[test]
    fn identical_reads_across_disjoint_write_stay_deduped_and_correct() {
        let e = env();
        let store = QueryStore::new(e.clone());
        let a = store.register("SELECT v FROM t WHERE id = 4").unwrap();
        assert!(
            store
                .register_stmt("UPDATE t SET v = 'q' WHERE id = 6")
                .unwrap()
                .deferred
        );
        // Identical read after the (disjoint) deferred write: dedup is
        // sound because the write proved itself disjoint from the first
        // occurrence — same footprint, same rows at both positions.
        let b = store.register("SELECT v FROM t WHERE id = 4").unwrap();
        assert_eq!(a, b);
        assert_eq!(
            store.result(a).unwrap().get(0, "v").unwrap().as_str(),
            Some("v4")
        );
    }

    #[test]
    fn deferred_write_error_surfaces_at_the_drain() {
        // The selective-laziness contract: a deferred write's failure is
        // reported at the flush that drains it, not at registration.
        let e = env();
        let store = QueryStore::new(e.clone());
        let w = store
            .register_stmt("UPDATE missing SET v = 'x' WHERE id = 1")
            .unwrap();
        assert!(w.deferred, "disjoint write defers even though it will fail");
        let err = store.flush().unwrap_err();
        assert!(err.to_string().contains("missing"), "got: {err}");
        // The id still answers with the batch error, never unknown-id.
        let per_id = store.result(w.id).unwrap_err();
        assert!(per_id.to_string().contains("batch failed"));
    }

    #[test]
    fn deferral_off_reproduces_write_aware_flush_per_write() {
        let on = env();
        let off = env();
        off.set_write_deferral(false);
        let s_on = QueryStore::new(on.clone());
        let s_off = QueryStore::new(off.clone());
        for store in [&s_on, &s_off] {
            for i in 0..3 {
                store
                    .register(format!("UPDATE t SET v = 'd{i}' WHERE id = {i}"))
                    .unwrap();
            }
            store.flush().unwrap();
        }
        assert_eq!(off.stats().round_trips, 3, "PR 4: one flush per write");
        assert_eq!(on.stats().round_trips, 1, "deferral: one for all three");
        assert_eq!(s_off.stats().deferred_writes, 0);
        // Same effects either way.
        for i in 0..3 {
            let a = on
                .query(&format!("SELECT v FROM t WHERE id = {i}"))
                .unwrap();
            let b = off
                .query(&format!("SELECT v FROM t WHERE id = {i}"))
                .unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn template_dedup_ignores_whitespace_and_case() {
        let store = QueryStore::new(env());
        let a = store.register("SELECT v FROM t WHERE id = 1").unwrap();
        let b = store.register("select  v  FROM  T where ID = 1").unwrap();
        assert_eq!(a, b, "formatting variants of the same query dedup");
        assert_eq!(store.pending_len(), 1);
        assert_eq!(store.stats().dedup_hits, 1);
        // Different parameters never dedup.
        let c = store.register("SELECT v FROM t WHERE id = 2").unwrap();
        assert_ne!(a, c);
        // Same template, different string-literal case is different data.
        let d = store.register("SELECT v FROM t WHERE v = 'X'").unwrap();
        let e = store.register("SELECT v FROM t WHERE v = 'x'").unwrap();
        assert_ne!(d, e);
    }

    #[test]
    fn fusion_stats_surface_in_store_stats() {
        let e = env();
        let store = QueryStore::new(e.clone());
        for i in 0..6 {
            store
                .register(format!("SELECT v FROM t WHERE id = {i}"))
                .unwrap();
        }
        store.flush().unwrap();
        let s = store.stats();
        assert_eq!(s.fused_queries, 6);
        assert_eq!(s.fused_groups, 1);
        // With fusion off the counters stay zero.
        let e2 = env();
        e2.set_fusion(false);
        let store2 = QueryStore::new(e2);
        for i in 0..6 {
            store2
                .register(format!("SELECT v FROM t WHERE id = {i}"))
                .unwrap();
        }
        store2.flush().unwrap();
        assert_eq!(store2.stats().fused_queries, 0);
    }

    #[test]
    fn store_handles_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QueryStore>();
    }

    #[test]
    fn result_waits_for_in_flight_flush_instead_of_unknown_id() {
        use std::sync::Barrier;
        // Real network time makes the flush window wide enough that the
        // second thread's result() reliably lands mid-flight.
        let e = env();
        e.set_realtime(0.2);
        let store = QueryStore::new(e.clone());
        let id = store.register("SELECT v FROM t WHERE id = 4").unwrap();
        let barrier = Arc::new(Barrier::new(2));
        let flusher = {
            let store = store.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                store.flush().unwrap();
            })
        };
        let reader = {
            let store = store.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                // Whether this lands before, during or after the flush, it
                // must return the real row — never "unknown query id".
                store.result(id)
            })
        };
        flusher.join().unwrap();
        let rs = reader.join().unwrap().expect("result, not unknown id");
        assert_eq!(rs.get(0, "v").unwrap().as_str(), Some("v4"));
        assert_eq!(e.stats().round_trips, 1, "one flush served both threads");
    }

    #[test]
    fn dispatched_store_matches_direct_store() {
        use sloth_net::Dispatcher;
        let direct_env = env();
        let direct = QueryStore::new(direct_env.clone());
        let disp_env = env();
        let dispatcher = Arc::new(Dispatcher::new(disp_env.clone()));
        let dispatched = QueryStore::dispatched(dispatcher.clone());

        for store in [&direct, &dispatched] {
            for i in 0..5 {
                store
                    .register(format!("SELECT v FROM t WHERE id = {i}"))
                    .unwrap();
            }
        }
        let a = direct.flush();
        let b = dispatched.flush();
        assert!(a.is_ok() && b.is_ok());
        assert_eq!(
            direct.stats().fused_queries,
            dispatched.stats().fused_queries
        );
        assert_eq!(direct_env.stats().round_trips, disp_env.stats().round_trips);
        assert_eq!(
            dispatched.stats().coalesced_batches,
            0,
            "a single session never coalesces"
        );
        assert_eq!(dispatcher.stats().flushes, 1);
    }

    #[test]
    fn concurrent_dispatched_sessions_coalesce() {
        use sloth_net::Dispatcher;
        use std::sync::Barrier;
        let e = env();
        // One stripe: this test asserts a deterministic coalescing count,
        // so all four flushes must meet under the same leader (with the
        // default 8 stripes, round-robin routing spreads them out).
        let dispatcher = Arc::new(Dispatcher::with_stripes(
            e.clone(),
            std::time::Duration::from_millis(20),
            1,
        ));
        let n = 4;
        let barrier = Arc::new(Barrier::new(n));
        let handles: Vec<_> = (0..n)
            .map(|t| {
                let d = Arc::clone(&dispatcher);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let store = QueryStore::dispatched(d);
                    let ids: Vec<QueryId> = (0..2)
                        .map(|i| {
                            store
                                .register(format!(
                                    "SELECT v FROM t WHERE id = {}",
                                    (t * 2 + i) % 10
                                ))
                                .unwrap()
                        })
                        .collect();
                    barrier.wait();
                    for (i, id) in ids.into_iter().enumerate() {
                        let rs = store.result(id).unwrap();
                        let want = format!("v{}", (t * 2 + i) % 10);
                        assert_eq!(rs.get(0, "v").unwrap().as_str(), Some(want.as_str()));
                    }
                    store.stats().coalesced_batches
                })
            })
            .collect();
        let coalesced: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(coalesced >= 2, "sessions shared a round trip: {coalesced}");
        assert!(e.stats().round_trips < n as u64);
    }

    #[test]
    fn injected_panic_flush_never_wedges_result_waits() {
        // Satellite 1: the drop-guard is armed in the same critical
        // section that admits ids to in_flight, so a panic anywhere on
        // the flush path still records an outcome for every drained id —
        // a later result() answers instead of waiting forever.
        let e = env();
        e.set_faults(Some(sloth_net::FaultPlan::seeded(5).panic_at(0)));
        let store = QueryStore::new(e.clone());
        let id = store.register("SELECT v FROM t WHERE id = 1").unwrap();
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| store.flush()));
        assert!(res.is_err(), "the injected panic propagates");
        let err = store.result(id).unwrap_err();
        assert!(
            err.to_string().contains("batch flush panicked"),
            "got: {err}"
        );
        // The store stays usable: trip 1 delivers.
        let id2 = store.register("SELECT v FROM t WHERE id = 2").unwrap();
        assert_eq!(
            store.result(id2).unwrap().get(0, "v").unwrap().as_str(),
            Some("v2")
        );
    }

    #[test]
    fn transient_exhaustion_degrades_session_to_eager_solo() {
        let e = env();
        e.set_faults(Some(sloth_net::FaultPlan::seeded(9).drops(1000)));
        e.set_retry_policy(sloth_net::RetryPolicy {
            max_attempts: 2,
            ..Default::default()
        });
        let store = QueryStore::new(e.clone());
        let id = store.register("SELECT v FROM t WHERE id = 1").unwrap();
        let err = store.flush().unwrap_err();
        assert!(sloth_net::is_transient_error(&err), "got: {err}");
        assert!(store.degraded());
        assert_eq!(store.stats().degradations, 1);
        assert!(store.result(id).is_err());
        // Faults gone: the degraded session still answers — eagerly.
        e.set_faults(None);
        let trips0 = e.stats().round_trips;
        let a = store.register("SELECT v FROM t WHERE id = 3").unwrap();
        store.register("SELECT v FROM t WHERE id = 4").unwrap();
        assert_eq!(
            e.stats().round_trips,
            trips0 + 2,
            "degraded reads ship immediately, one trip each"
        );
        let w = store
            .register_stmt("UPDATE t SET v = 'd' WHERE id = 5")
            .unwrap();
        assert!(!w.deferred, "degraded sessions never defer writes");
        assert_eq!(
            store.result(a).unwrap().get(0, "v").unwrap().as_str(),
            Some("v3")
        );
        assert_eq!(store.stats().degradations, 1, "the transition counts once");
    }

    #[test]
    fn degraded_dispatched_session_bypasses_coalescing() {
        use sloth_net::Dispatcher;
        let e = env();
        e.set_faults(Some(sloth_net::FaultPlan::seeded(11).drops(1000)));
        e.set_retry_policy(sloth_net::RetryPolicy {
            max_attempts: 1,
            ..Default::default()
        });
        let d = Arc::new(Dispatcher::new(e.clone()));
        let store = QueryStore::dispatched(Arc::clone(&d));
        store.register("SELECT v FROM t WHERE id = 1").unwrap();
        assert!(store.flush().is_err());
        assert!(store.degraded());
        e.set_faults(None);
        let id = store.register("SELECT v FROM t WHERE id = 2").unwrap();
        assert_eq!(
            store.result(id).unwrap().get(0, "v").unwrap().as_str(),
            Some("v2")
        );
        assert!(
            d.stats().degraded_solo >= 1,
            "degraded flushes use submit_solo: {:?}",
            d.stats()
        );
    }

    // ---- transaction-scoped laziness ----

    #[test]
    fn silent_transaction_defers_whole_and_drains_once() {
        let e = env();
        let store = QueryStore::new(e.clone());
        assert!(store.register_stmt("BEGIN").unwrap().deferred);
        assert!(
            store
                .register_stmt("UPDATE t SET v = 'a' WHERE id = 1")
                .unwrap()
                .deferred
        );
        assert!(
            store
                .register_stmt("UPDATE t SET v = 'b' WHERE id = 2")
                .unwrap()
                .deferred
        );
        assert!(store.register_stmt("COMMIT").unwrap().deferred);
        // The whole BEGIN…COMMIT block lingered: zero round trips so far.
        assert_eq!(e.stats().round_trips, 0);
        assert_eq!(store.pending_len(), 4);
        assert_eq!(store.stats().deferred_txns, 1);
        // End-of-request drain ships the block as ONE round trip.
        store.flush_deferred_writes().unwrap();
        assert_eq!(e.stats().round_trips, 1);
        assert_eq!(
            e.query("SELECT v FROM t WHERE id = 1")
                .unwrap()
                .get(0, "v")
                .unwrap()
                .as_str(),
            Some("a")
        );
    }

    #[test]
    fn transaction_with_interior_conflicts_still_defers() {
        // Conflicting statements INSIDE one txn ride the same in-order
        // batch: write-after-write and read-after-write resolve exactly
        // as the serial program would.
        let e = env();
        let store = QueryStore::new(e.clone());
        store.register_stmt("BEGIN").unwrap();
        assert!(
            store
                .register_stmt("UPDATE t SET v = 'x' WHERE id = 3")
                .unwrap()
                .deferred
        );
        assert!(
            store
                .register_stmt("UPDATE t SET v = 'y' WHERE id = 3")
                .unwrap()
                .deferred
        );
        let r = store.register("SELECT v FROM t WHERE id = 3").unwrap();
        store.register_stmt("COMMIT").unwrap();
        assert_eq!(e.stats().round_trips, 0, "the block never split");
        // The in-txn read observes the txn's own writes.
        assert_eq!(
            store.result(r).unwrap().get(0, "v").unwrap().as_str(),
            Some("y")
        );
        assert_eq!(e.stats().round_trips, 1);
    }

    #[test]
    fn barrier_inside_transaction_poisons_it() {
        let e = env();
        let store = QueryStore::new(e.clone());
        store.register_stmt("BEGIN").unwrap();
        store
            .register_stmt("UPDATE t SET v = 'p' WHERE id = 4")
            .unwrap();
        // DDL is a barrier: the block reverts to eager semantics and
        // everything pending drains with it.
        store
            .register_stmt("CREATE INDEX idx_poison ON t (v)")
            .unwrap();
        assert_eq!(store.pending_len(), 0);
        let trips = e.stats().round_trips;
        assert!(trips >= 1);
        // The following COMMIT finds no open silent block: barrier path.
        let c = store.register_stmt("COMMIT").unwrap();
        assert!(!c.deferred);
        assert_eq!(store.stats().deferred_txns, 0);
    }

    #[test]
    fn unclosed_transaction_ships_whole_at_request_end() {
        let e = env();
        let store = QueryStore::new(e.clone());
        store.register_stmt("BEGIN").unwrap();
        store
            .register_stmt("UPDATE t SET v = 'u' WHERE id = 5")
            .unwrap();
        // No COMMIT: the end-of-request hook must still execute the block.
        store.flush_deferred_writes().unwrap();
        assert_eq!(e.stats().round_trips, 1);
        assert_eq!(
            e.query("SELECT v FROM t WHERE id = 5")
                .unwrap()
                .get(0, "v")
                .unwrap()
                .as_str(),
            Some("u")
        );
    }

    // ---- read-your-writes rewrites ----

    #[test]
    fn read_your_writes_answers_locally_from_post_image() {
        let e = env();
        let store = QueryStore::new(e.clone());
        let base = store.register("SELECT v FROM t WHERE id = 6").unwrap();
        assert!(
            store
                .register_stmt("UPDATE t SET v = 'rw' WHERE id = 6")
                .unwrap()
                .deferred
        );
        // Re-reading the same row after the deferred write: the dedup hit
        // is unsound (the write sits between the two positions), but the
        // write's post-image fully determines the answer — rewrite.
        let after = store.register("SELECT v FROM t WHERE id = 6").unwrap();
        assert_ne!(base, after);
        assert_eq!(e.stats().round_trips, 0, "no drain for the rewrite");
        assert_eq!(store.stats().ryw_rewrites, 1);
        // The base still answers pre-write, the rewrite post-write —
        // byte-identical to the serial program at both positions.
        assert_eq!(
            store.result(after).unwrap().get(0, "v").unwrap().as_str(),
            Some("rw")
        );
        assert_eq!(
            store.result(base).unwrap().get(0, "v").unwrap().as_str(),
            Some("v6")
        );
        // One drain shipped everything (base read + write).
        assert_eq!(e.stats().round_trips, 1);
        assert_eq!(
            e.query("SELECT v FROM t WHERE id = 6")
                .unwrap()
                .get(0, "v")
                .unwrap()
                .as_str(),
            Some("rw")
        );
    }

    #[test]
    fn read_your_writes_composes_overlays_in_write_order() {
        // Two same-key updates can only both be pending inside a silent
        // transaction (outside one, write-after-write drains); the
        // rewrite overlays their post-images in write order.
        let e = env();
        let store = QueryStore::new(e.clone());
        store.register("SELECT v FROM t WHERE id = 7").unwrap();
        store.register_stmt("BEGIN").unwrap();
        store
            .register_stmt("UPDATE t SET v = 'first' WHERE id = 7")
            .unwrap();
        store
            .register_stmt("UPDATE t SET v = 'second' WHERE id = 7")
            .unwrap();
        store.register_stmt("COMMIT").unwrap();
        let r = store.register("SELECT v FROM t WHERE id = 7").unwrap();
        assert_eq!(e.stats().round_trips, 0);
        assert_eq!(
            store.result(r).unwrap().get(0, "v").unwrap().as_str(),
            Some("second"),
            "later post-images overwrite earlier ones"
        );
    }

    #[test]
    fn read_your_writes_coerces_to_declared_column_type() {
        // The overlay must store what the ENGINE would store: an integer
        // literal written into a FLOAT column lands as a float.
        let e = SimEnv::default_env();
        e.seed_sql("CREATE TABLE m (id INT PRIMARY KEY, score FLOAT)")
            .unwrap();
        e.seed_sql("INSERT INTO m VALUES (1, 0.5)").unwrap();
        let store = QueryStore::new(e.clone());
        store.register("SELECT score FROM m WHERE id = 1").unwrap();
        store
            .register_stmt("UPDATE m SET score = 2 WHERE id = 1")
            .unwrap();
        let r = store.register("SELECT score FROM m WHERE id = 1").unwrap();
        assert_eq!(store.stats().ryw_rewrites, 1);
        let local = store.result(r).unwrap();
        store.flush().unwrap();
        let served = e.query("SELECT score FROM m WHERE id = 1").unwrap();
        assert_eq!(
            local.rows, served.rows,
            "rewritten rows must be byte-identical to a real drain"
        );
    }

    #[test]
    fn non_key_exact_write_falls_back_to_drain() {
        let e = env();
        let store = QueryStore::new(e.clone());
        store.register("SELECT v FROM t WHERE id = 8").unwrap();
        // Range predicate: not key-exact, so no post-image exists and the
        // conflicting re-read must fall back to the conservative drain.
        store
            .register_stmt("UPDATE t SET v = 'all' WHERE id >= 8")
            .unwrap();
        let r = store.register("SELECT v FROM t WHERE id = 8").unwrap();
        assert_eq!(store.stats().ryw_rewrites, 0);
        assert!(store.stats().conflict_drains >= 1);
        assert_eq!(
            store.result(r).unwrap().get(0, "v").unwrap().as_str(),
            Some("all")
        );
    }

    // ---- order-preserving deferred-write drain ----

    #[test]
    fn deferred_drain_keeps_disjoint_reads_but_ships_overtaken_ones() {
        let e = env();
        let store = QueryStore::new(e.clone());
        // A read the later write conflicts with, and one it does not.
        let hot = store.register("SELECT v FROM t WHERE id = 9").unwrap();
        let cold = store.register("SELECT v FROM t WHERE id = 2").unwrap();
        assert!(
            store
                .register_stmt("UPDATE t SET v = 'z' WHERE id = 9")
                .unwrap()
                .deferred
        );
        store.flush_deferred_writes().unwrap();
        // The conflicting read rode the drain (shipping the write around
        // it would have let the write overtake); the disjoint one stayed.
        assert_eq!(store.pending_len(), 1);
        assert_eq!(e.stats().round_trips, 1);
        assert_eq!(
            store.result(hot).unwrap().get(0, "v").unwrap().as_str(),
            Some("v9"),
            "the earlier read still observes pre-write state"
        );
        assert_eq!(e.stats().round_trips, 1, "hot was already answered");
        assert_eq!(
            store.result(cold).unwrap().get(0, "v").unwrap().as_str(),
            Some("v2")
        );
        assert_eq!(e.stats().round_trips, 2);
    }
}
