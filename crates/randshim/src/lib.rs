//! # `rand` shim — deterministic stand-in for the `rand` crate
//!
//! The build environment has no access to crates.io, so this workspace
//! crate shadows `rand` with the minimal API surface the benchmark seeders
//! of the paper's evaluation (§6) use: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `RngExt::random_range` over integer
//! ranges. The generator is SplitMix64 — deterministic, seedable, and
//! statistically fine for synthesizing benchmark fixtures (nothing here is
//! cryptographic).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable RNG constructor, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers, mirroring the subset of `rand::Rng` the apps use.
pub trait RngExt {
    /// The next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from an integer range (`a..b` or `a..=b`).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        SampleRange::sample(range, self)
    }
}

/// Integer ranges that can be sampled; mirrors `rand::distr::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: RngExt + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngExt + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngExt + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// RNG implementations.
pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// SplitMix64-backed stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(0..1000);
            assert!((0..1000).contains(&x));
            let y: i64 = rng.random_range(1..=5);
            assert!((1..=5).contains(&y));
            let z: i64 = rng.random_range(-9..10);
            assert!((-9..10).contains(&z));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            buckets[rng.random_range(0..10usize)] += 1;
        }
        for b in buckets {
            assert!((800..1200).contains(&b), "bucket {b} far from uniform");
        }
    }
}
