//! The paper's soundness theorem (§3.8 / appendix) as a property test:
//! for randomly generated kernel-language programs, standard evaluation and
//! extended lazy evaluation (under every optimization configuration) must
//! produce the same output and leave the database in the same state.
//!
//! Uses a deterministic SplitMix64 generator instead of `proptest` (no
//! third-party crates are available in the build environment); each case is
//! reproducible from its printed seed.

use std::sync::Arc;

use sloth_lang::{run_source, ExecStrategy, OptFlags};
use sloth_net::SimEnv;
use sloth_orm::Schema;

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9E3779B97F4A7C15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % (hi - lo) as u64) as i64
    }
}

/// Builds a random straight-line/branchy/loopy program over integer
/// variables `v0..v4`, reads and writes against a seeded table, and prints.
fn arb_program(rng: &mut Rng) -> String {
    let n = rng.range(1, 12);
    let mut stmts = Vec::new();
    for _ in 0..n {
        let stmt = match rng.range(0, 8) {
            0 | 1 => {
                // Arithmetic assignment over the variable pool.
                let (dst, a, b) = (rng.range(0, 5), rng.range(0, 5), rng.range(0, 5));
                let op = ["+", "-", "*"][rng.range(0, 3) as usize];
                let lit = rng.range(-9, 10);
                format!("v{dst} = v{a} {op} (v{b} + {lit});")
            }
            2 => {
                // Branch with assignments in both arms (deferrable or not).
                let (c, t, e) = (rng.range(0, 5), rng.range(0, 5), rng.range(0, 5));
                let lit = rng.range(-5, 6);
                format!("if (v{c} > {lit}) {{ v{t} = v{t} + 1; }} else {{ v{e} = v{e} - 2; }}")
            }
            3 => {
                // Bounded loop.
                let (dst, n) = (rng.range(0, 5), rng.range(1, 5));
                format!("let i = 0; while (i < {n}) {{ v{dst} = v{dst} + i; i = i + 1; }}")
            }
            4 => {
                // Read query derived from a variable (bounded to valid ids).
                let (dst, src) = (rng.range(0, 5), rng.range(0, 5));
                format!(
                    "let id = v{src} % 5; if (id < 0) {{ id = 0 - id; }} \
                     let rs = query(\"SELECT v FROM t WHERE id = \" + str(id)); \
                     if (nrows(rs) > 0) {{ v{dst} = v{dst} + cell(rs, 0, \"v\"); }}"
                )
            }
            5 => {
                // Write query (flushes the batch, §3.3).
                let (id, delta) = (rng.range(0, 5), rng.range(-3, 4));
                format!("exec(\"UPDATE t SET v = v + {delta} WHERE id = {id}\");")
            }
            6 => {
                // Output.
                format!("print(str(v{}));", rng.range(0, 5))
            }
            _ => {
                // Pure helper call.
                let (dst, a) = (rng.range(0, 5), rng.range(0, 5));
                format!("v{dst} = double(v{a});")
            }
        };
        stmts.push(stmt);
    }
    format!(
        "fn double(x) {{ return x * 2; }}\n\
         fn main() {{\n\
         let v0 = 1; let v1 = 2; let v2 = 3; let v3 = 4; let v4 = 5;\n\
         {}\n\
         print(str(v0 + v1 + v2 + v3 + v4));\n\
         }}",
        stmts.join("\n")
    )
}

fn fresh_env() -> SimEnv {
    let env = SimEnv::default_env();
    env.seed_sql("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        .unwrap();
    for i in 0..5 {
        env.seed_sql(&format!("INSERT INTO t VALUES ({i}, {})", i * 7 + 1))
            .unwrap();
    }
    env
}

fn table_state(env: &SimEnv) -> Vec<Vec<sloth_sql::Value>> {
    env.seed(|db| {
        db.execute("SELECT id, v FROM t ORDER BY id")
            .unwrap()
            .result
            .rows
    })
}

fn check_equivalent(src: &str, flags: OptFlags) {
    let schema = Arc::new(Schema::new());
    let env_o = fresh_env();
    let o = run_source(
        src,
        &env_o,
        Arc::clone(&schema),
        ExecStrategy::Original,
        vec![],
    );
    let env_s = fresh_env();
    let s = run_source(
        src,
        &env_s,
        Arc::clone(&schema),
        ExecStrategy::Sloth(flags),
        vec![],
    );
    match (o, s) {
        (Ok(o), Ok(s)) => {
            assert_eq!(o.output, s.output, "program:\n{src}");
            assert_eq!(table_state(&env_o), table_state(&env_s), "program:\n{src}");
        }
        (Err(_), Err(_)) => {} // both fail symmetrically
        (o, s) => panic!(
            "one mode failed: orig={:?} sloth={:?} program:\n{src}",
            o.map(|r| r.output),
            s.map(|r| r.output)
        ),
    }
}

/// Standard vs. lazy semantics: identical output, identical final DB —
/// for the fully optimized configuration.
#[test]
fn lazy_equals_standard_all_opts() {
    for case in 0..64u64 {
        let mut rng = Rng::new(0xA11_0975 ^ case);
        let src = arb_program(&mut rng);
        check_equivalent(&src, OptFlags::all());
    }
}

/// Equivalence must hold for *every* optimization configuration —
/// the optimizations are semantics-preserving (§4).
#[test]
fn lazy_equals_standard_all_flag_combinations() {
    for case in 0..64u64 {
        let mut rng = Rng::new(0xF1A6 ^ case);
        let src = arb_program(&mut rng);
        let mask = rng.range(0, 16) as u8;
        let flags = OptFlags {
            selective: mask & 1 != 0,
            coalesce: mask & 2 != 0,
            defer_branches: mask & 4 != 0,
            buffered_writer: mask & 8 != 0,
        };
        check_equivalent(&src, flags);
    }
}

/// Lazy evaluation never *increases* round trips.
#[test]
fn lazy_never_more_round_trips() {
    for case in 0..64u64 {
        let mut rng = Rng::new(0x0007_2195 ^ case);
        let src = arb_program(&mut rng);
        let schema = Arc::new(Schema::new());
        let env_o = fresh_env();
        let o = run_source(
            &src,
            &env_o,
            Arc::clone(&schema),
            ExecStrategy::Original,
            vec![],
        );
        let env_s = fresh_env();
        let s = run_source(
            &src,
            &env_s,
            Arc::clone(&schema),
            ExecStrategy::Sloth(OptFlags::all()),
            vec![],
        );
        if let (Ok(o), Ok(s)) = (o, s) {
            assert!(
                s.net.round_trips <= o.net.round_trips,
                "sloth {} trips > original {} program:\n{src}",
                s.net.round_trips,
                o.net.round_trips
            );
        }
    }
}
