//! The paper's soundness theorem (§3.8 / appendix) as a property test:
//! for randomly generated kernel-language programs, standard evaluation and
//! extended lazy evaluation (under every optimization configuration) must
//! produce the same output and leave the database in the same state.

use std::rc::Rc;

use proptest::prelude::*;
use sloth_lang::{run_source, ExecStrategy, OptFlags};
use sloth_net::SimEnv;
use sloth_orm::Schema;

/// Builds a random straight-line/branchy/loopy program over integer
/// variables `v0..v4`, reads and writes against a seeded table, and prints.
fn arb_program() -> impl Strategy<Value = String> {
    let stmt = prop_oneof![
        // Arithmetic assignment over the variable pool.
        (0..5usize, 0..5usize, 0..5usize, 0..3usize, -9i64..10).prop_map(
            |(dst, a, b, op, lit)| {
                let ops = ["+", "-", "*"];
                format!("v{dst} = v{a} {} (v{b} + {lit});", ops[op])
            }
        ),
        // Branch with assignments in both arms (deferrable or not).
        (0..5usize, 0..5usize, 0..5usize, -5i64..6).prop_map(|(c, t, e, lit)| format!(
            "if (v{c} > {lit}) {{ v{t} = v{t} + 1; }} else {{ v{e} = v{e} - 2; }}"
        )),
        // Bounded loop.
        (0..5usize, 1..5i64).prop_map(|(dst, n)| format!(
            "let i = 0; while (i < {n}) {{ v{dst} = v{dst} + i; i = i + 1; }}"
        )),
        // Read query derived from a variable (bounded to valid ids).
        (0..5usize, 0..5usize).prop_map(|(dst, src)| format!(
            "let id = v{src} % 5; if (id < 0) {{ id = 0 - id; }} \
             let rs = query(\"SELECT v FROM t WHERE id = \" + str(id)); \
             if (nrows(rs) > 0) {{ v{dst} = v{dst} + cell(rs, 0, \"v\"); }}"
        )),
        // Write query (flushes the batch, §3.3).
        (0..5i64, -3i64..4).prop_map(|(id, delta)| format!(
            "exec(\"UPDATE t SET v = v + {delta} WHERE id = {id}\");"
        )),
        // Output.
        (0..5usize).prop_map(|v| format!("print(str(v{v}));")),
        // Pure helper call.
        (0..5usize, 0..5usize).prop_map(|(dst, a)| format!("v{dst} = double(v{a});")),
    ];
    proptest::collection::vec(stmt, 1..12).prop_map(|stmts| {
        format!(
            "fn double(x) {{ return x * 2; }}\n\
             fn main() {{\n\
             let v0 = 1; let v1 = 2; let v2 = 3; let v3 = 4; let v4 = 5;\n\
             {}\n\
             print(str(v0 + v1 + v2 + v3 + v4));\n\
             }}",
            stmts.join("\n")
        )
    })
}

fn fresh_env() -> SimEnv {
    let env = SimEnv::default_env();
    env.seed_sql("CREATE TABLE t (id INT PRIMARY KEY, v INT)").unwrap();
    for i in 0..5 {
        env.seed_sql(&format!("INSERT INTO t VALUES ({i}, {})", i * 7 + 1)).unwrap();
    }
    env
}

fn table_state(env: &SimEnv) -> Vec<Vec<sloth_sql::Value>> {
    env.seed(|db| db.execute("SELECT id, v FROM t ORDER BY id").unwrap().result.rows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Standard vs. lazy semantics: identical output, identical final DB —
    /// for the fully optimized configuration.
    #[test]
    fn lazy_equals_standard_all_opts(src in arb_program()) {
        let schema = Rc::new(Schema::new());
        let env_o = fresh_env();
        let o = run_source(&src, &env_o, Rc::clone(&schema), ExecStrategy::Original, vec![]);
        let env_s = fresh_env();
        let s = run_source(
            &src, &env_s, Rc::clone(&schema), ExecStrategy::Sloth(OptFlags::all()), vec![]);
        match (o, s) {
            (Ok(o), Ok(s)) => {
                prop_assert_eq!(o.output, s.output);
                prop_assert_eq!(table_state(&env_o), table_state(&env_s));
            }
            (Err(_), Err(_)) => {} // both fail (e.g. overflow-free programs shouldn't, but symmetric)
            (o, s) => prop_assert!(false, "one mode failed: orig={:?} sloth={:?}",
                o.map(|r| r.output), s.map(|r| r.output)),
        }
    }

    /// Equivalence must hold for *every* optimization configuration —
    /// the optimizations are semantics-preserving (§4).
    #[test]
    fn lazy_equals_standard_all_flag_combinations(src in arb_program(), mask in 0u8..16) {
        let flags = OptFlags {
            selective: mask & 1 != 0,
            coalesce: mask & 2 != 0,
            defer_branches: mask & 4 != 0,
            buffered_writer: mask & 8 != 0,
        };
        let schema = Rc::new(Schema::new());
        let env_o = fresh_env();
        let o = run_source(&src, &env_o, Rc::clone(&schema), ExecStrategy::Original, vec![]);
        let env_s = fresh_env();
        let s = run_source(&src, &env_s, Rc::clone(&schema), ExecStrategy::Sloth(flags), vec![]);
        match (o, s) {
            (Ok(o), Ok(s)) => {
                prop_assert_eq!(o.output, s.output);
                prop_assert_eq!(table_state(&env_o), table_state(&env_s));
            }
            (Err(_), Err(_)) => {}
            (o, s) => prop_assert!(false, "one mode failed: orig={:?} sloth={:?}",
                o.map(|r| r.output), s.map(|r| r.output)),
        }
    }

    /// Lazy evaluation never *increases* round trips.
    #[test]
    fn lazy_never_more_round_trips(src in arb_program()) {
        let schema = Rc::new(Schema::new());
        let env_o = fresh_env();
        let o = run_source(&src, &env_o, Rc::clone(&schema), ExecStrategy::Original, vec![]);
        let env_s = fresh_env();
        let s = run_source(
            &src, &env_s, Rc::clone(&schema), ExecStrategy::Sloth(OptFlags::all()), vec![]);
        if let (Ok(o), Ok(s)) = (o, s) {
            prop_assert!(s.net.round_trips <= o.net.round_trips,
                "sloth {} trips > original {}", s.net.round_trips, o.net.round_trips);
        }
    }
}
