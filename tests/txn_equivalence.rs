//! Transaction-scoped laziness equivalence, property-tested at the
//! **query store** level: random streams of `BEGIN … COMMIT` blocks
//! (disjoint and conflicting interiors, rollbacks, read-your-writes
//! re-reads, interleaved forces) must produce per-statement results,
//! final database state and error behaviour identical to the
//! statement-at-a-time serial reference — across deferral on/off ×
//! fusion on/off × shards ∈ {1, 2, 4}, and through the multi-session
//! dispatcher, where disjoint deferred transactions coalesce.
//!
//! The post-image rewrite legality *edges* (UPDATE widening, IN-list
//! pins, non-key-exact fallback) are unit-tested in
//! `sloth_sql::footprint`; this suite checks the end-to-end behaviour.
//!
//! Deterministic SplitMix64 cases (no third-party crates available);
//! failures print the generating stream.

use std::sync::Arc;

use sloth_core::QueryStore;
use sloth_net::{CostModel, Dispatcher, ShardedEnv, SimEnv};
use sloth_sql::{ShardSpec, Value};

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9E3779B97F4A7C15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % (hi - lo) as u64) as i64
    }
}

fn seed_statements() -> Vec<String> {
    let mut s = vec![
        "CREATE TABLE project (id INT PRIMARY KEY, name TEXT)".to_string(),
        "CREATE TABLE issue (id INT PRIMARY KEY, project_id INT, title TEXT, sev INT)".to_string(),
        "CREATE INDEX ON issue (project_id)".to_string(),
    ];
    for p in 0..8 {
        s.push(format!("INSERT INTO project VALUES ({p}, 'proj{p}')"));
    }
    for i in 0..40 {
        s.push(format!(
            "INSERT INTO issue VALUES ({i}, {}, 'bug{}', {})",
            i % 8,
            i % 5,
            i % 4
        ));
    }
    s
}

fn fresh_env() -> SimEnv {
    let env = SimEnv::default_env();
    for sql in seed_statements() {
        env.seed_sql(&sql).unwrap();
    }
    env
}

fn fresh_sharded(n: usize) -> SimEnv {
    let spec = ShardSpec::new().shard("issue", "id").shard("project", "id");
    let fleet = ShardedEnv::new(CostModel::default(), spec, n);
    let env = fleet.handle();
    for sql in seed_statements() {
        env.seed_sql(&sql).unwrap();
    }
    env
}

/// One step of a registration stream: a statement to register, or a
/// force of the `n`-th registered statement so far.
#[derive(Debug, Clone)]
enum Op {
    Stmt(String),
    Force(usize),
}

/// One interior statement of a transaction block (or a bare statement).
fn arb_stmt(rng: &mut Rng, next_insert_id: &mut i64) -> String {
    match rng.range(0, 8) {
        // Key-exact literal updates: post-image carriers.
        0 | 1 => format!(
            "UPDATE issue SET sev = {} WHERE id = {}",
            rng.range(0, 9),
            rng.range(0, 40)
        ),
        // Arithmetic update: footprint-routed but NOT rewritable.
        2 => format!(
            "UPDATE issue SET sev = sev + 1 WHERE id = {}",
            rng.range(0, 40)
        ),
        // IN-list pinned update.
        3 => format!(
            "UPDATE issue SET title = 'seen{}' WHERE id IN ({}, {})",
            rng.range(0, 4),
            rng.range(0, 40),
            rng.range(0, 40)
        ),
        4 => {
            let id = *next_insert_id;
            *next_insert_id += 1;
            format!(
                "INSERT INTO issue (id, project_id, title, sev) VALUES ({id}, {}, 't{id}', {})",
                rng.range(0, 8),
                rng.range(0, 4)
            )
        }
        5 => format!(
            "UPDATE project SET name = 'renamed{}' WHERE id = {}",
            rng.range(0, 4),
            rng.range(0, 8)
        ),
        // Point reads (dedup/rewrite bases) and scans.
        6 => format!(
            "SELECT title, sev FROM issue WHERE id = {}",
            rng.range(0, 40)
        ),
        _ => format!(
            "SELECT * FROM issue WHERE project_id = {} ORDER BY id",
            rng.range(0, 8)
        ),
    }
}

/// A random stream of transaction blocks, bare statements,
/// read-update-reread triples (the read-your-writes shape) and forces.
fn arb_txn_stream(rng: &mut Rng, next_insert_id: &mut i64) -> Vec<Op> {
    let segments = rng.range(2, 7);
    let mut ops: Vec<Op> = Vec::new();
    let mut registered = 0usize;
    let push = |ops: &mut Vec<Op>, registered: &mut usize, sql: String| {
        ops.push(Op::Stmt(sql));
        *registered += 1;
    };
    for _ in 0..segments {
        match rng.range(0, 6) {
            // A transaction block: 1–4 interior statements, closed by
            // COMMIT (usually) or ROLLBACK.
            0..=2 => {
                push(&mut ops, &mut registered, "BEGIN".to_string());
                for _ in 0..rng.range(1, 5) {
                    let sql = arb_stmt(rng, next_insert_id);
                    push(&mut ops, &mut registered, sql);
                }
                let close = if rng.range(0, 6) == 0 {
                    "ROLLBACK"
                } else {
                    "COMMIT"
                };
                push(&mut ops, &mut registered, close.to_string());
            }
            // The read-your-writes shape: read a row, update it with a
            // key-exact literal, read it again — the re-read must see
            // the pending write without draining.
            3 => {
                let id = rng.range(0, 40);
                push(
                    &mut ops,
                    &mut registered,
                    format!("SELECT title, sev FROM issue WHERE id = {id}"),
                );
                push(
                    &mut ops,
                    &mut registered,
                    format!("UPDATE issue SET sev = {} WHERE id = {id}", rng.range(0, 9)),
                );
                push(
                    &mut ops,
                    &mut registered,
                    format!("SELECT title, sev FROM issue WHERE id = {id}"),
                );
            }
            // A bare statement.
            4 => {
                let sql = arb_stmt(rng, next_insert_id);
                push(&mut ops, &mut registered, sql);
            }
            // A force of something already registered.
            _ => {
                if registered > 0 {
                    ops.push(Op::Force(rng.range(0, registered as i64) as usize));
                } else {
                    let sql = arb_stmt(rng, next_insert_id);
                    push(&mut ops, &mut registered, sql);
                }
            }
        }
    }
    ops
}

fn state_fingerprint(env: &SimEnv) -> Vec<Vec<Value>> {
    let mut rows = env
        .query("SELECT id, project_id, title, sev FROM issue ORDER BY id")
        .unwrap()
        .rows;
    rows.extend(
        env.query("SELECT id, name FROM project ORDER BY id")
            .unwrap()
            .rows,
    );
    rows
}

/// Runs a stream through one store configuration and checks every
/// registered statement's result against the serial reference.
fn check_stream(ops: &[Op], env: SimEnv, label: &str) {
    let serial = fresh_env();
    let sqls: Vec<&String> = ops
        .iter()
        .filter_map(|o| match o {
            Op::Stmt(s) => Some(s),
            Op::Force(_) => None,
        })
        .collect();
    let serial_results: Vec<_> = sqls
        .iter()
        .map(|sql| {
            serial
                .query(sql)
                .unwrap_or_else(|e| panic!("{label}: serial {sql}: {e}"))
        })
        .collect();

    let store = QueryStore::new(env.clone());
    let mut ids = Vec::new();
    for op in ops {
        match op {
            Op::Stmt(sql) => {
                let id = store
                    .register(sql.clone())
                    .unwrap_or_else(|e| panic!("{label}: register {sql}: {e} (ops {ops:#?})"));
                ids.push(id);
            }
            Op::Force(i) => {
                store
                    .result(ids[*i])
                    .unwrap_or_else(|e| panic!("{label}: force {i}: {e} (ops {ops:#?})"));
            }
        }
    }
    store
        .flush()
        .unwrap_or_else(|e| panic!("{label}: final flush: {e} (ops {ops:#?})"));
    store.flush_deferred_writes().unwrap();
    for (i, id) in ids.iter().enumerate() {
        let got = store
            .result(*id)
            .unwrap_or_else(|e| panic!("{label}: result {i}: {e} (ops {ops:#?})"));
        assert_eq!(
            got, serial_results[i],
            "{label}: statement {i} ({}) diverged (ops {ops:#?})",
            sqls[i]
        );
    }
    assert_eq!(
        state_fingerprint(&env),
        state_fingerprint(&serial),
        "{label}: final state diverged (ops {ops:#?})"
    );
}

/// The main grid: deferral × fusion × shards, 40 random txn streams each.
#[test]
fn random_txn_streams_match_serial_reference() {
    for case in 0..40u64 {
        let mut rng = Rng::new(0x7A9_0001 ^ case);
        let mut next_id = 500;
        let ops = arb_txn_stream(&mut rng, &mut next_id);
        for deferral in [true, false] {
            for fusion in [true, false] {
                for shards in [1usize, 2, 4] {
                    let env = if shards == 1 {
                        fresh_env()
                    } else {
                        fresh_sharded(shards)
                    };
                    env.set_write_deferral(deferral);
                    env.set_fusion(fusion);
                    let label =
                        format!("case {case} deferral={deferral} fusion={fusion} shards={shards}");
                    check_stream(&ops, env, &label);
                }
            }
        }
    }
}

/// The suite must actually exercise the new machinery: across the random
/// streams, silent transactions defer and read-your-writes rewrites fire.
#[test]
fn txn_streams_exercise_silent_txns_and_rewrites() {
    let mut deferred_txns = 0u64;
    let mut ryw = 0u64;
    for case in 0..40u64 {
        let mut rng = Rng::new(0x7A9_0001 ^ case);
        let mut next_id = 500;
        let ops = arb_txn_stream(&mut rng, &mut next_id);
        let env = fresh_env();
        let store = QueryStore::new(env);
        let mut ids = Vec::new();
        for op in &ops {
            match op {
                Op::Stmt(sql) => ids.push(store.register(sql.clone()).unwrap()),
                Op::Force(i) => {
                    store.result(ids[*i]).unwrap();
                }
            }
        }
        store.flush_deferred_writes().unwrap();
        let stats = store.stats();
        deferred_txns += stats.deferred_txns;
        ryw += stats.ryw_rewrites;
    }
    assert!(deferred_txns > 0, "no stream deferred a whole transaction");
    assert!(ryw > 0, "no stream hit the read-your-writes rewrite");
}

/// Transaction-scoped laziness must never cost round trips on these
/// streams, and across the suite it must strictly save them.
#[test]
fn txn_deferral_saves_round_trips() {
    let mut saved_total = 0i64;
    for case in 0..40u64 {
        let mut rng = Rng::new(0x7A9_5AFE ^ case);
        let mut next_id = 900;
        let ops = arb_txn_stream(&mut rng, &mut next_id);
        let mut trips = Vec::new();
        for deferral in [false, true] {
            let env = fresh_env();
            env.set_write_deferral(deferral);
            let store = QueryStore::new(env.clone());
            let mut ids = Vec::new();
            for op in &ops {
                match op {
                    Op::Stmt(sql) => ids.push(store.register(sql.clone()).unwrap()),
                    Op::Force(i) => {
                        store.result(ids[*i]).unwrap();
                    }
                }
            }
            store.flush().unwrap();
            store.flush_deferred_writes().unwrap();
            trips.push(env.stats().round_trips);
        }
        assert!(
            trips[1] <= trips[0],
            "case {case}: deferral added trips ({} vs {}): {ops:#?}",
            trips[1],
            trips[0]
        );
        saved_total += trips[0] as i64 - trips[1] as i64;
    }
    assert!(
        saved_total > 0,
        "txn deferral saved nothing across the suite"
    );
}

/// Error timing under transactions: a failing statement **inside** the
/// last transaction of the stream. Serially, execution stops at the
/// failure; lazily the whole deferred block drains at the end and the
/// batch stops at the same statement — the error, every result before
/// it, and the final state must all match the serial prefix.
#[test]
fn failing_statement_mid_txn_matches_serial_prefix() {
    for case in 0..20u64 {
        let mut rng = Rng::new(0xBAD_7A9 ^ case);
        let mut next_id = 700;
        let mut ops = arb_txn_stream(&mut rng, &mut next_id);
        ops.push(Op::Stmt("BEGIN".to_string()));
        ops.push(Op::Stmt(format!(
            "UPDATE issue SET sev = 8 WHERE id = {}",
            rng.range(0, 40)
        )));
        ops.push(Op::Stmt(
            "UPDATE missing SET v = 1 WHERE id = 1".to_string(),
        ));
        ops.push(Op::Stmt(format!(
            "UPDATE issue SET sev = 9 WHERE id = {}",
            rng.range(0, 40)
        )));
        ops.push(Op::Stmt("COMMIT".to_string()));

        let serial = fresh_env();
        let mut serial_results = Vec::new();
        let mut serial_err = None;
        for op in &ops {
            if let Op::Stmt(sql) = op {
                match serial.query(sql) {
                    Ok(rs) => serial_results.push(rs),
                    Err(e) => {
                        serial_err = Some(e);
                        break;
                    }
                }
            }
        }
        let serial_err = serial_err.expect("the mid-txn statement must fail");

        let env = fresh_env();
        let store = QueryStore::new(env.clone());
        let mut ids = Vec::new();
        for op in &ops {
            match op {
                Op::Stmt(sql) => match store.register(sql.clone()) {
                    Ok(id) => ids.push(id),
                    Err(e) => panic!("case {case}: only the drain may error, got {e} at register"),
                },
                Op::Force(i) => {
                    store.result(ids[*i]).unwrap();
                }
            }
        }
        let err = store
            .flush()
            .expect_err("the drain surfaces the mid-txn error");
        assert_eq!(err, serial_err, "case {case}: first error diverged");
        for (i, rs) in serial_results.iter().enumerate() {
            assert_eq!(
                &store.result(ids[i]).unwrap(),
                rs,
                "case {case}: statement {i} diverged"
            );
        }
        assert_eq!(
            state_fingerprint(&env),
            state_fingerprint(&serial),
            "case {case}: state after failing drain diverged"
        );
    }
}

/// Multi-session transactions through the shared dispatcher: sessions
/// running whole `BEGIN … COMMIT` blocks over disjoint row ranges defer
/// them, the dispatcher coalesces the disjoint blocks, and every effect
/// applies exactly once — no transaction ever splits across dispatches.
#[test]
fn dispatched_sessions_coalesce_disjoint_transactions() {
    use std::sync::Barrier;
    let env = fresh_env();
    let dispatcher = Arc::new(Dispatcher::with_window(
        env.clone(),
        std::time::Duration::from_millis(15),
    ));
    let n = 4usize;
    let rows_per = 10i64;
    let barrier = Arc::new(Barrier::new(n));
    let handles: Vec<_> = (0..n)
        .map(|t| {
            let d = Arc::clone(&dispatcher);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let base = t as i64 * rows_per;
                let mut rng = Rng::new(0x7A9_C0DE ^ t as u64);
                // Each session runs transactions over its own rows; the
                // serial reference replays the same stream alone.
                let serial = fresh_env();
                let mut stream = Vec::new();
                for _ in 0..3 {
                    stream.push("BEGIN".to_string());
                    for _ in 0..rng.range(1, 4) {
                        let row = base + rng.range(0, rows_per);
                        if rng.range(0, 3) == 0 {
                            stream.push(format!("SELECT sev FROM issue WHERE id = {row}"));
                        } else {
                            stream.push(format!("UPDATE issue SET sev = sev + 1 WHERE id = {row}"));
                        }
                    }
                    stream.push("COMMIT".to_string());
                }
                let expected: Vec<_> = stream
                    .iter()
                    .map(|sql| serial.query(sql).unwrap())
                    .collect();

                barrier.wait();
                let store = QueryStore::dispatched(d);
                let ids: Vec<_> = stream
                    .iter()
                    .map(|sql| store.register(sql.clone()).unwrap())
                    .collect();
                store.flush_deferred_writes().unwrap();
                for (i, id) in ids.iter().enumerate() {
                    assert_eq!(
                        store.result(*id).unwrap(),
                        expected[i],
                        "session {t} stmt {i} ({})",
                        stream[i]
                    );
                }
                (store.stats(), serial)
            })
        })
        .collect();
    let mut deferred_txns = 0u64;
    let mut serials = Vec::new();
    for h in handles {
        let (stats, serial) = h.join().unwrap();
        deferred_txns += stats.deferred_txns;
        serials.push(serial);
    }
    assert!(
        deferred_txns >= n as u64,
        "every session must defer whole transactions (got {deferred_txns})"
    );
    // Exact-once effects: each row's final sev equals its own session's
    // serial outcome.
    for (t, serial) in serials.iter().enumerate() {
        let base = t as i64 * rows_per;
        for row in base..base + rows_per {
            let got = env
                .query(&format!("SELECT sev FROM issue WHERE id = {row}"))
                .unwrap();
            let want = serial
                .query(&format!("SELECT sev FROM issue WHERE id = {row}"))
                .unwrap();
            assert_eq!(got, want, "row {row} of session {t}");
        }
    }
}
