//! Fusion equivalence, property-tested at the batch-driver level: for
//! random batches of point lookups (mixed with scans, aggregates and
//! writes), execution with fusion enabled must produce per-query result
//! sets identical to execution with fusion disabled — same rows, same
//! order, same errors, same final database state.
//!
//! Deterministic SplitMix64 cases (no third-party crates available);
//! failures print the generating seed's batch.

use sloth_net::SimEnv;
use sloth_sql::Value;

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9E3779B97F4A7C15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % (hi - lo) as u64) as i64
    }
}

/// Two tables; `issue.project_id` carries a secondary index so fused
/// lookups take the K-probe path, `issue.title` exercises the unindexed
/// demux path.
fn fresh_env() -> SimEnv {
    let env = SimEnv::default_env();
    env.seed_sql("CREATE TABLE project (id INT PRIMARY KEY, name TEXT)")
        .unwrap();
    env.seed_sql("CREATE TABLE issue (id INT PRIMARY KEY, project_id INT, title TEXT, sev INT)")
        .unwrap();
    env.seed_sql("CREATE INDEX ON issue (project_id)").unwrap();
    for p in 0..8 {
        env.seed_sql(&format!("INSERT INTO project VALUES ({p}, 'proj{p}')"))
            .unwrap();
    }
    for i in 0..40 {
        env.seed_sql(&format!(
            "INSERT INTO issue VALUES ({i}, {}, 'bug{}', {})",
            i % 8,
            i % 5,
            i % 4
        ))
        .unwrap();
    }
    env
}

/// A random batch statement, biased towards the fusable point-lookup
/// patterns an ORM page emits.
fn arb_statement(rng: &mut Rng) -> String {
    match rng.range(0, 12) {
        // Fusable point lookups (several templates).
        0..=3 => format!(
            "SELECT * FROM issue WHERE project_id = {} ORDER BY id",
            rng.range(0, 10)
        ),
        4 | 5 => format!("SELECT * FROM project WHERE id = {}", rng.range(0, 10)),
        6 => format!(
            "SELECT id, sev FROM issue WHERE project_id = {}",
            rng.range(0, 10)
        ),
        // Same template, different formatting (dedup/fusion must both cope).
        7 => format!(
            "select * from ISSUE where PROJECT_ID = {}  ORDER BY id",
            rng.range(0, 10)
        ),
        // Unfusable shapes sharing the batch.
        8 => format!(
            "SELECT COUNT(*) FROM issue WHERE project_id = {}",
            rng.range(0, 10)
        ),
        9 => format!(
            "SELECT * FROM issue WHERE sev >= {} ORDER BY id LIMIT 7",
            rng.range(0, 4)
        ),
        10 => format!(
            "SELECT title FROM issue WHERE title = 'bug{}'",
            rng.range(0, 6)
        ),
        // Writes: force segment boundaries inside the batch.
        _ => format!(
            "UPDATE issue SET sev = {} WHERE project_id = {}",
            rng.range(0, 9),
            rng.range(0, 8)
        ),
    }
}

fn db_state(env: &SimEnv) -> Vec<Vec<Value>> {
    env.seed(|db| {
        db.execute("SELECT id, project_id, title, sev FROM issue ORDER BY id")
            .unwrap()
            .result
            .rows
    })
}

/// Random batches: fused results == unfused results, row for row.
#[test]
fn random_batches_fused_equals_unfused() {
    for case in 0..200u64 {
        let mut rng = Rng::new(0xF05E_D00D ^ case);
        let n = rng.range(1, 25);
        let batch: Vec<String> = (0..n).map(|_| arb_statement(&mut rng)).collect();

        let on = fresh_env();
        let off = fresh_env();
        off.set_fusion(false);
        let r_on = on.query_batch(&batch);
        let r_off = off.query_batch(&batch);
        match (r_on, r_off) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.len(), b.len());
                for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                    assert_eq!(x, y, "statement {i} of batch {batch:#?}");
                }
                assert_eq!(db_state(&on), db_state(&off), "batch {batch:#?}");
                assert_eq!(
                    on.stats().round_trips,
                    off.stats().round_trips,
                    "fusion must not change round trips"
                );
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "batch {batch:#?}"),
            (a, b) => panic!("one mode failed: on={a:?} off={b:?} batch {batch:#?}"),
        }
    }
}

/// Chunked fused probes (bounded `IN` arity) must be invisible: random
/// batches demux identically with a tiny arity cap, an arity of one,
/// and the default — across chunk boundaries and write segments.
#[test]
fn random_batches_demux_equivalently_across_chunk_boundaries() {
    for case in 0..60u64 {
        let mut rng = Rng::new(0xC4_0BEE ^ case);
        let n = rng.range(4, 30);
        let batch: Vec<String> = (0..n).map(|_| arb_statement(&mut rng)).collect();
        let wide = fresh_env();
        let reference = wide.query_batch(&batch);
        for arity in [1usize, 3] {
            let chunked = fresh_env();
            chunked.set_max_fused_arity(arity);
            let got = chunked.query_batch(&batch);
            match (&reference, &got) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a, b, "arity {arity}: {batch:#?}");
                    assert_eq!(db_state(&wide), db_state(&chunked), "arity {arity}");
                    assert_eq!(
                        wide.stats().round_trips,
                        chunked.stats().round_trips,
                        "chunking must not change batching"
                    );
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "arity {arity}: {batch:#?}"),
                (a, b) => panic!("one arity failed: wide={a:?} chunked={b:?} {batch:#?}"),
            }
        }
    }
}

/// Pure point-lookup batches — the hot ORM pattern — must fuse (not just
/// stay equivalent) and save simulated database time at scale.
#[test]
fn point_lookup_batches_actually_fuse() {
    let mut rng = Rng::new(42);
    let batch: Vec<String> = (0..30)
        .map(|_| {
            format!(
                "SELECT * FROM issue WHERE project_id = {} ORDER BY id",
                rng.range(0, 8)
            )
        })
        .collect();
    let on = fresh_env();
    let off = fresh_env();
    off.set_fusion(false);
    let a = on.query_batch(&batch).unwrap();
    let b = off.query_batch(&batch).unwrap();
    assert_eq!(a, b);
    let s = on.stats();
    assert_eq!(s.fused_queries, 30, "every lookup joined the fused group");
    assert_eq!(s.fused_groups, 1);
    assert!(s.db_ns < off.stats().db_ns);
}

/// Conflicting writes split fusion segments: a lookup of the written rows
/// after a write sees the write, with and without fusion.
#[test]
fn writes_split_fusion_segments() {
    let batch = vec![
        "SELECT * FROM issue WHERE project_id = 1 ORDER BY id".to_string(),
        "SELECT * FROM issue WHERE project_id = 2 ORDER BY id".to_string(),
        "UPDATE issue SET sev = 99 WHERE project_id = 1".to_string(),
        "SELECT * FROM issue WHERE project_id = 1 ORDER BY id".to_string(),
        "SELECT * FROM issue WHERE project_id = 3 ORDER BY id".to_string(),
    ];
    let on = fresh_env();
    let off = fresh_env();
    off.set_fusion(false);
    let a = on.query_batch(&batch).unwrap();
    let b = off.query_batch(&batch).unwrap();
    assert_eq!(a, b);
    // Pre-write lookup kept the old severity; post-write lookup sees 99.
    let sev_before = a[0].get(0, "sev").unwrap().as_i64().unwrap();
    let sev_after = a[3].get(0, "sev").unwrap().as_i64().unwrap();
    assert_ne!(sev_before, 99);
    assert_eq!(sev_after, 99);
    // Two groups: q3 probes the rows the write touched, so it must not
    // join {q0, q1} across the write; it opens the second group that q4
    // then joins (q4 is disjoint from the write and rides along).
    assert_eq!(on.stats().fused_groups, 2);
    assert_eq!(on.stats().fused_queries, 4);
}

/// The write-aware planner fuses ACROSS disjoint-footprint writes: the
/// probes around a write on another project land in one group, at results
/// identical to fusion-off (which still executes in batch order).
#[test]
fn disjoint_writes_do_not_split_fusion() {
    let batch = vec![
        "SELECT * FROM issue WHERE project_id = 1 ORDER BY id".to_string(),
        "UPDATE issue SET sev = 99 WHERE project_id = 7".to_string(),
        "SELECT * FROM issue WHERE project_id = 2 ORDER BY id".to_string(),
        "SELECT * FROM issue WHERE project_id = 3 ORDER BY id".to_string(),
    ];
    let on = fresh_env();
    let off = fresh_env();
    off.set_fusion(false);
    let a = on.query_batch(&batch).unwrap();
    let b = off.query_batch(&batch).unwrap();
    assert_eq!(a, b);
    assert_eq!(db_state(&on), db_state(&off));
    assert_eq!(
        on.stats().fused_groups,
        1,
        "one probe spans the disjoint write"
    );
    assert_eq!(on.stats().fused_queries, 3);
}

/// A write-heavy random statement (≥ 30 % writes when mixed 40/60 with
/// `arb_statement`), spanning overlapping and disjoint tables/keys:
/// routed updates, cross-column updates, inserts (named and positional
/// columns), and deletes of rows another statement may probe.
fn arb_write(rng: &mut Rng, next_insert_id: &mut i64) -> String {
    match rng.range(0, 7) {
        6 => format!("DELETE FROM issue WHERE id = {}", rng.range(30, 50)),
        0 | 1 => format!(
            "UPDATE issue SET sev = {} WHERE project_id = {}",
            rng.range(0, 9),
            rng.range(0, 10)
        ),
        2 => format!(
            "UPDATE issue SET title = 'retitled{}' WHERE id = {}",
            rng.range(0, 5),
            rng.range(0, 45)
        ),
        3 => format!(
            "UPDATE project SET name = 'renamed{}' WHERE id = {}",
            rng.range(0, 4),
            rng.range(0, 10)
        ),
        4 => {
            let id = *next_insert_id;
            *next_insert_id += 1;
            format!(
                "INSERT INTO issue (id, project_id, title, sev) VALUES ({id}, {}, 'w{id}', {})",
                rng.range(0, 10),
                rng.range(0, 4)
            )
        }
        _ => {
            let id = *next_insert_id;
            *next_insert_id += 1;
            format!(
                "INSERT INTO issue VALUES ({id}, {}, 'p{id}', {})",
                rng.range(0, 10),
                rng.range(0, 4)
            )
        }
    }
}

/// The write-aware segment planner against the **serial reference**:
/// random write-heavy batches (≥ 30 % writes, overlapping and disjoint
/// footprints) must produce per-statement results, final database state
/// and first-error behaviour identical to executing the same statements
/// one at a time — with fusion on and off, write-aware and legacy.
#[test]
fn write_heavy_batches_match_serial_reference() {
    for case in 0..150u64 {
        let mut rng = Rng::new(0xBEEF_CAFE ^ case);
        let mut next_id = 500;
        let n = rng.range(2, 24);
        let batch: Vec<String> = (0..n)
            .map(|_| {
                if rng.range(0, 10) < 4 {
                    arb_write(&mut rng, &mut next_id)
                } else {
                    arb_statement(&mut rng)
                }
            })
            .collect();

        // Serial reference: one statement per round trip, stop at the
        // first error (exactly what the batch driver's semantics promise).
        let serial = fresh_env();
        let mut serial_results = Vec::new();
        let mut serial_err = None;
        for sql in &batch {
            match serial.query(sql) {
                Ok(rs) => serial_results.push(rs),
                Err(e) => {
                    serial_err = Some(e);
                    break;
                }
            }
        }

        for (fusion, write_aware) in [(true, true), (false, true), (true, false)] {
            let env = fresh_env();
            env.set_fusion(fusion);
            env.set_write_batching(write_aware);
            match (env.query_batch(&batch), &serial_err) {
                (Ok(results), None) => {
                    assert_eq!(
                        results, serial_results,
                        "fusion={fusion} write_aware={write_aware}: {batch:#?}"
                    );
                    assert_eq!(
                        db_state(&env),
                        db_state(&serial),
                        "state diverged (fusion={fusion} write_aware={write_aware}): {batch:#?}"
                    );
                }
                (Err(a), Some(b)) => {
                    assert_eq!(
                        &a, b,
                        "first error (fusion={fusion} write_aware={write_aware}): {batch:#?}"
                    );
                    // Writes before the failing statement applied exactly
                    // as the serial prefix did.
                    assert_eq!(
                        db_state(&env),
                        db_state(&serial),
                        "failed-batch state (fusion={fusion} write_aware={write_aware}): {batch:#?}"
                    );
                }
                (a, b) => panic!(
                    "batch vs serial disagree on failure: batch={a:?} serial={b:?} {batch:#?}"
                ),
            }
        }
    }
}
