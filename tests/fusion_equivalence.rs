//! Fusion equivalence, property-tested at the batch-driver level: for
//! random batches of point lookups (mixed with scans, aggregates and
//! writes), execution with fusion enabled must produce per-query result
//! sets identical to execution with fusion disabled — same rows, same
//! order, same errors, same final database state.
//!
//! Deterministic SplitMix64 cases (no third-party crates available);
//! failures print the generating seed's batch.

use sloth_net::SimEnv;
use sloth_sql::Value;

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9E3779B97F4A7C15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % (hi - lo) as u64) as i64
    }
}

/// Two tables; `issue.project_id` carries a secondary index so fused
/// lookups take the K-probe path, `issue.title` exercises the unindexed
/// demux path.
fn fresh_env() -> SimEnv {
    let env = SimEnv::default_env();
    env.seed_sql("CREATE TABLE project (id INT PRIMARY KEY, name TEXT)")
        .unwrap();
    env.seed_sql("CREATE TABLE issue (id INT PRIMARY KEY, project_id INT, title TEXT, sev INT)")
        .unwrap();
    env.seed_sql("CREATE INDEX ON issue (project_id)").unwrap();
    for p in 0..8 {
        env.seed_sql(&format!("INSERT INTO project VALUES ({p}, 'proj{p}')"))
            .unwrap();
    }
    for i in 0..40 {
        env.seed_sql(&format!(
            "INSERT INTO issue VALUES ({i}, {}, 'bug{}', {})",
            i % 8,
            i % 5,
            i % 4
        ))
        .unwrap();
    }
    env
}

/// A random batch statement, biased towards the fusable point-lookup
/// patterns an ORM page emits.
fn arb_statement(rng: &mut Rng) -> String {
    match rng.range(0, 12) {
        // Fusable point lookups (several templates).
        0..=3 => format!(
            "SELECT * FROM issue WHERE project_id = {} ORDER BY id",
            rng.range(0, 10)
        ),
        4 | 5 => format!("SELECT * FROM project WHERE id = {}", rng.range(0, 10)),
        6 => format!(
            "SELECT id, sev FROM issue WHERE project_id = {}",
            rng.range(0, 10)
        ),
        // Same template, different formatting (dedup/fusion must both cope).
        7 => format!(
            "select * from ISSUE where PROJECT_ID = {}  ORDER BY id",
            rng.range(0, 10)
        ),
        // Unfusable shapes sharing the batch.
        8 => format!(
            "SELECT COUNT(*) FROM issue WHERE project_id = {}",
            rng.range(0, 10)
        ),
        9 => format!(
            "SELECT * FROM issue WHERE sev >= {} ORDER BY id LIMIT 7",
            rng.range(0, 4)
        ),
        10 => format!(
            "SELECT title FROM issue WHERE title = 'bug{}'",
            rng.range(0, 6)
        ),
        // Writes: force segment boundaries inside the batch.
        _ => format!(
            "UPDATE issue SET sev = {} WHERE project_id = {}",
            rng.range(0, 9),
            rng.range(0, 8)
        ),
    }
}

fn db_state(env: &SimEnv) -> Vec<Vec<Value>> {
    env.seed(|db| {
        db.execute("SELECT id, project_id, title, sev FROM issue ORDER BY id")
            .unwrap()
            .result
            .rows
    })
}

/// Random batches: fused results == unfused results, row for row.
#[test]
fn random_batches_fused_equals_unfused() {
    for case in 0..200u64 {
        let mut rng = Rng::new(0xF05E_D00D ^ case);
        let n = rng.range(1, 25);
        let batch: Vec<String> = (0..n).map(|_| arb_statement(&mut rng)).collect();

        let on = fresh_env();
        let off = fresh_env();
        off.set_fusion(false);
        let r_on = on.query_batch(&batch);
        let r_off = off.query_batch(&batch);
        match (r_on, r_off) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.len(), b.len());
                for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                    assert_eq!(x, y, "statement {i} of batch {batch:#?}");
                }
                assert_eq!(db_state(&on), db_state(&off), "batch {batch:#?}");
                assert_eq!(
                    on.stats().round_trips,
                    off.stats().round_trips,
                    "fusion must not change round trips"
                );
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "batch {batch:#?}"),
            (a, b) => panic!("one mode failed: on={a:?} off={b:?} batch {batch:#?}"),
        }
    }
}

/// Pure point-lookup batches — the hot ORM pattern — must fuse (not just
/// stay equivalent) and save simulated database time at scale.
#[test]
fn point_lookup_batches_actually_fuse() {
    let mut rng = Rng::new(42);
    let batch: Vec<String> = (0..30)
        .map(|_| {
            format!(
                "SELECT * FROM issue WHERE project_id = {} ORDER BY id",
                rng.range(0, 8)
            )
        })
        .collect();
    let on = fresh_env();
    let off = fresh_env();
    off.set_fusion(false);
    let a = on.query_batch(&batch).unwrap();
    let b = off.query_batch(&batch).unwrap();
    assert_eq!(a, b);
    let s = on.stats();
    assert_eq!(s.fused_queries, 30, "every lookup joined the fused group");
    assert_eq!(s.fused_groups, 1);
    assert!(s.db_ns < off.stats().db_ns);
}

/// Mixed writes split fusion segments: a lookup after a write sees the
/// write, with and without fusion.
#[test]
fn writes_split_fusion_segments() {
    let batch = vec![
        "SELECT * FROM issue WHERE project_id = 1 ORDER BY id".to_string(),
        "SELECT * FROM issue WHERE project_id = 2 ORDER BY id".to_string(),
        "UPDATE issue SET sev = 99 WHERE project_id = 1".to_string(),
        "SELECT * FROM issue WHERE project_id = 1 ORDER BY id".to_string(),
        "SELECT * FROM issue WHERE project_id = 3 ORDER BY id".to_string(),
    ];
    let on = fresh_env();
    let off = fresh_env();
    off.set_fusion(false);
    let a = on.query_batch(&batch).unwrap();
    let b = off.query_batch(&batch).unwrap();
    assert_eq!(a, b);
    // Pre-write lookup kept the old severity; post-write lookup sees 99.
    let sev_before = a[0].get(0, "sev").unwrap().as_i64().unwrap();
    let sev_after = a[3].get(0, "sev").unwrap().as_i64().unwrap();
    assert_ne!(sev_before, 99);
    assert_eq!(sev_after, 99);
    // Two groups: {q0, q1} before the write, {q3, q4} after it.
    assert_eq!(on.stats().fused_groups, 2);
    assert_eq!(on.stats().fused_queries, 4);
}
