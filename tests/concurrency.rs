//! Concurrent multi-session serving: end-to-end tests of the thread-safe
//! driver core across the Rust-level stack (`sloth-orm` sessions +
//! `sloth-web` rendering on shared deployments, with and without the
//! cross-session [`Dispatcher`]).
//!
//! The invariant under test everywhere: at equal inputs, a page rendered
//! by a session on a shared concurrent deployment is bit-identical to the
//! same page rendered alone — batching, fusion and cross-session
//! coalescing are performance features, never semantic ones.

use std::sync::{Arc, Barrier};
use std::time::Duration;

use sloth_core::QueryStore;
use sloth_net::{Dispatcher, SimEnv};
use sloth_orm::{entity, one_to_many, FetchStrategy, Schema, Session};
use sloth_sql::ast::ColumnType::*;
use sloth_web::{render, Model, ModelValue};

fn clinic_schema() -> Arc<Schema> {
    let mut s = Schema::new();
    s.add(entity(
        "patient",
        "patient",
        "patient_id",
        &[("patient_id", Int), ("name", Text)],
        vec![one_to_many(
            "encounters",
            "encounter",
            "patient_id",
            FetchStrategy::Lazy,
        )],
    ));
    s.add(entity(
        "encounter",
        "encounter",
        "encounter_id",
        &[("encounter_id", Int), ("patient_id", Int), ("kind", Text)],
        vec![],
    ));
    Arc::new(s)
}

fn seeded_env(schema: &Schema, patients: i64) -> SimEnv {
    let env = SimEnv::default_env();
    for ddl in schema.ddl() {
        env.seed_sql(&ddl).unwrap();
    }
    for p in 1..=patients {
        env.seed_sql(&format!("INSERT INTO patient VALUES ({p}, 'patient-{p}')"))
            .unwrap();
        for e in 0..3 {
            env.seed_sql(&format!(
                "INSERT INTO encounter VALUES ({}, {p}, 'kind-{e}')",
                p * 10 + e
            ))
            .unwrap();
        }
    }
    env
}

/// Renders one "patient dashboard" page for `pid` on the given session.
fn render_dashboard(session: &Session, pid: i64) -> String {
    let patient = session.find_thunk("patient", pid).unwrap();
    let p = patient.force().expect("patient exists");
    let encounters = session.assoc_thunk(&p, "encounters").unwrap();
    let mut model = Model::new();
    model.put("patient", ModelValue::Entity(p));
    model.put("encounters", ModelValue::LazyList(encounters));
    render(&model)
}

/// The serial reference: each page rendered alone on a fresh deployment.
fn reference_page(schema: &Arc<Schema>, patients: i64, pid: i64) -> String {
    let env = seeded_env(schema, patients);
    let store = QueryStore::new(env.clone());
    let session = Session::deferred(store, Arc::clone(schema));
    render_dashboard(&session, pid)
}

#[test]
fn concurrent_sessions_render_identical_pages_on_shared_env() {
    let schema = clinic_schema();
    let patients = 12i64;
    let env = seeded_env(&schema, patients);
    let expected: Vec<String> = (1..=patients)
        .map(|pid| reference_page(&schema, patients, pid))
        .collect();
    let barrier = Arc::new(Barrier::new(8));
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let env = env.clone();
            let schema = Arc::clone(&schema);
            let expected = expected.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for round in 0..6i64 {
                    let pid = 1 + ((t as i64 + round * 3) % 12);
                    // Each page request = its own session on the shared env.
                    let store = QueryStore::new(env.clone());
                    let session = Session::deferred(store, Arc::clone(&schema));
                    let page = render_dashboard(&session, pid);
                    assert_eq!(
                        page,
                        expected[(pid - 1) as usize],
                        "thread {t} round {round}"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let s = env.stats();
    assert_eq!(s.queries, 8 * 6 * 2, "two queries per page");
}

#[test]
fn concurrent_sessions_through_dispatcher_coalesce_with_equal_pages() {
    let schema = clinic_schema();
    let patients = 12i64;
    let env = seeded_env(&schema, patients);
    let dispatcher = Arc::new(Dispatcher::with_window(
        env.clone(),
        Duration::from_millis(5),
    ));
    let expected: Vec<String> = (1..=patients)
        .map(|pid| reference_page(&schema, patients, pid))
        .collect();
    let n = 8;
    let barrier = Arc::new(Barrier::new(n));
    let handles: Vec<_> = (0..n)
        .map(|t| {
            let dispatcher = Arc::clone(&dispatcher);
            let schema = Arc::clone(&schema);
            let expected = expected.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for round in 0..8i64 {
                    let pid = 1 + ((t as i64 * 5 + round) % 12);
                    let store = QueryStore::dispatched(Arc::clone(&dispatcher));
                    let session = Session::deferred(store, Arc::clone(&schema));
                    let page = render_dashboard(&session, pid);
                    assert_eq!(
                        page,
                        expected[(pid - 1) as usize],
                        "thread {t} round {round}"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let d = dispatcher.stats();
    assert_eq!(d.flushes, 8 * 8 * 2, "two flushes per page");
    assert!(
        d.dispatches < d.flushes,
        "concurrent flushes must share round trips: {d:?}"
    );
    assert!(d.coalesced_batches > 0, "{d:?}");
    assert!(
        d.cross_session_fused_queries > 0,
        "same-template lookups from different sessions fuse: {d:?}"
    );
    assert_eq!(env.stats().round_trips, d.dispatches);
}

#[test]
fn dispatcher_matches_serial_at_one_session() {
    let schema = clinic_schema();
    let env_direct = seeded_env(&schema, 4);
    let env_disp = seeded_env(&schema, 4);
    let dispatcher = Arc::new(Dispatcher::new(env_disp.clone()));
    for pid in 1..=4 {
        let direct = Session::deferred(QueryStore::new(env_direct.clone()), Arc::clone(&schema));
        let dispatched = Session::deferred(
            QueryStore::dispatched(Arc::clone(&dispatcher)),
            Arc::clone(&schema),
        );
        assert_eq!(
            render_dashboard(&direct, pid),
            render_dashboard(&dispatched, pid)
        );
    }
    // Bit-identical driver behaviour: same trips, same statements, and no
    // coalescing ever happened.
    assert_eq!(env_direct.stats().round_trips, env_disp.stats().round_trips);
    assert_eq!(env_direct.stats().queries, env_disp.stats().queries);
    assert_eq!(dispatcher.stats().coalesced_batches, 0);
}

/// Satellite: the 512-entry plan-cache bound, exercised through two
/// sessions sharing one `Database` (one deployment), with hit/miss/
/// eviction counters asserted across the sessions.
#[test]
fn plan_cache_shared_by_two_sessions_hits_and_evicts() {
    let env = SimEnv::default_env();
    env.seed_sql("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        .unwrap();
    env.seed_sql("INSERT INTO t VALUES (1, 10)").unwrap();

    // Session A warms one template.
    let a = QueryStore::new(env.clone());
    let id = a.register("SELECT v FROM t WHERE id = 1").unwrap();
    a.result(id).unwrap();
    let warm = env.plan_cache_stats();
    assert_eq!(warm.misses, 1);
    assert_eq!(warm.entries, 1);

    // Session B reuses it: pure hit, no parse — one shared Database, one
    // shared plan cache.
    let b = QueryStore::new(env.clone());
    let id = b.register("SELECT v FROM t WHERE id = 1").unwrap();
    b.result(id).unwrap();
    let shared = env.plan_cache_stats();
    assert_eq!(shared.hits, warm.hits + 1, "B hit A's plan");
    assert_eq!(shared.misses, warm.misses);

    // Session B then floods distinct templates past the 512 bound.
    for i in 0..520usize {
        let id = b
            .register(format!("SELECT v FROM t WHERE id = 1 LIMIT {}", i + 1))
            .unwrap();
        b.result(id).unwrap();
    }
    let flooded = env.plan_cache_stats();
    assert_eq!(flooded.entries, 512, "bound holds under shared use");
    assert!(flooded.evictions >= 9, "oldest plans evicted: {flooded:?}");

    // Session A's original template was the oldest: it misses again.
    let before = env.plan_cache_stats();
    let id = a.register("SELECT v FROM t WHERE id = 1").unwrap();
    a.result(id).unwrap();
    let after = env.plan_cache_stats();
    assert_eq!(
        after.misses,
        before.misses + 1,
        "evicted template re-parses"
    );
}

/// The write-mixed dispatcher equivalence suite (the release concurrency
/// gate): concurrent sessions interleave read-only dashboards with
/// **write-containing flushes** through one shared dispatcher. Each
/// session owns a disjoint key range, so its batches are footprint-
/// disjoint from every other session's and eligible for cross-session
/// coalescing — and every page and every write must still come out
/// bit-identical to the serial reference.
#[test]
fn dispatched_write_mix_matches_serial_reference() {
    let schema = clinic_schema();
    let patients = 12i64;
    let env = seeded_env(&schema, patients);
    let dispatcher = Arc::new(Dispatcher::with_window(
        env.clone(),
        Duration::from_millis(5),
    ));
    let n = 6usize;
    let rounds = 5i64;
    let barrier = Arc::new(Barrier::new(n));
    let handles: Vec<_> = (0..n)
        .map(|t| {
            let dispatcher = Arc::clone(&dispatcher);
            let schema = Arc::clone(&schema);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                // Session t owns patients t*2+1 and t*2+2 exclusively.
                let own = [t as i64 * 2 + 1, t as i64 * 2 + 2];
                for round in 0..rounds {
                    let pid = own[(round % 2) as usize];
                    let store = QueryStore::dispatched(Arc::clone(&dispatcher));
                    // A read (registered, pending) plus a write on the
                    // session's own row: one write-containing flush.
                    let read = store
                        .register(format!("SELECT name FROM patient WHERE patient_id = {pid}"))
                        .unwrap();
                    let write = store
                        .register(format!(
                            "UPDATE patient SET name = 'renamed-{pid}-{round}' \
                             WHERE patient_id = {pid}"
                        ))
                        .unwrap();
                    // The pre-write read sees the previous round's name.
                    let before = store.result(read).unwrap();
                    let want = if round < 2 {
                        format!("patient-{pid}")
                    } else {
                        format!("renamed-{pid}-{}", round - 2)
                    };
                    assert_eq!(
                        before.get(0, "name").unwrap().as_str(),
                        Some(want.as_str()),
                        "session {t} round {round}"
                    );
                    assert!(store.result(write).unwrap().is_empty());
                    // A read-only dashboard session in between.
                    let ro = QueryStore::dispatched(Arc::clone(&dispatcher));
                    let session = Session::deferred(ro, Arc::clone(&schema));
                    let page = render_dashboard(&session, pid);
                    assert!(
                        page.contains(&format!("renamed-{pid}-{round}")),
                        "session {t} round {round} sees its own write: {page}"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // Final state: every session's last rename landed exactly once.
    for t in 0..n as i64 {
        for (slot, pid) in [(0i64, t * 2 + 1), (1, t * 2 + 2)] {
            let last = (0..rounds).rev().find(|r| r % 2 == slot).unwrap();
            let rs = env
                .query(&format!(
                    "SELECT name FROM patient WHERE patient_id = {pid}"
                ))
                .unwrap();
            assert_eq!(
                rs.get(0, "name").unwrap().as_str(),
                Some(format!("renamed-{pid}-{last}").as_str())
            );
        }
    }
    let d = dispatcher.stats();
    assert_eq!(
        d.solo_writes, 0,
        "disjoint write batches are admitted: {d:?}"
    );
    assert!(
        d.dispatches <= d.flushes,
        "write admission must not inflate dispatches: {d:?}"
    );
}

/// Satellite: the observability surfaces (`stats`, `now_ns`,
/// `result_cache_stats`, `Dispatcher::stats`) must never block behind an
/// in-flight batch. We wedge a **write** batch mid-ship by holding the
/// database write lock, then require a full set of stats reads to
/// complete on a bounded timeout while the batch is provably still
/// stuck. Read-only batches no longer wedge at all — they execute
/// against the published snapshot (see
/// `snapshot_read_completes_while_writer_holds_the_db` below), so the
/// wedge here must be a writer.
#[test]
fn stats_reads_complete_while_a_batch_is_mid_ship() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::mpsc;

    let schema = clinic_schema();
    let env = seeded_env(&schema, 2);
    let dispatcher = Arc::new(Dispatcher::new(env.clone()));

    // Wedge the backend: while this guard lives, any *write* batch that
    // reaches the database blocks mid-ship.
    let db = env.database();
    let guard = db.write().unwrap();

    let batch_done = Arc::new(AtomicBool::new(false));
    let batch = {
        let env = env.clone();
        let done = Arc::clone(&batch_done);
        std::thread::spawn(move || {
            env.query("UPDATE patient SET name = 'renamed' WHERE patient_id = 1")
                .unwrap();
            done.store(true, Ordering::SeqCst);
        })
    };
    // Give the batch thread time to reach the database lock.
    std::thread::sleep(Duration::from_millis(50));
    assert!(
        !batch_done.load(Ordering::SeqCst),
        "write batch must be wedged mid-ship before the stats reads start"
    );

    // Every read-only surface must answer without the database lock.
    let (tx, rx) = mpsc::channel();
    {
        let env = env.clone();
        let dispatcher = Arc::clone(&dispatcher);
        std::thread::spawn(move || {
            let stats = env.stats();
            let now = env.now_ns();
            let cache = env.result_cache_stats();
            let disp = dispatcher.stats();
            tx.send((stats, now, cache, disp)).unwrap();
        });
    }
    let (stats, _now, cache, disp) = rx
        .recv_timeout(Duration::from_secs(5))
        .expect("stats reads must not block behind an in-flight batch");
    assert_eq!(
        stats.queries, 0,
        "seeding is unmetered and the wedged batch has not landed: {stats:?}"
    );
    assert_eq!(cache.hits, 0);
    assert_eq!(disp.flushes, 0);
    assert!(
        !batch_done.load(Ordering::SeqCst),
        "stats reads finished while the batch was still mid-ship"
    );

    drop(guard);
    batch.join().unwrap();
    let rs = env
        .query("SELECT name FROM patient WHERE patient_id = 1")
        .unwrap();
    assert_eq!(rs.get(0, "name").unwrap().as_str(), Some("renamed"));
}

/// Tentpole regression (reader-wedge): a read-only batch must complete
/// with bounded latency while another thread holds the database write
/// lock mid-batch — exactly the wedge that used to stall every reader
/// before MVCC snapshot reads. The read executes against the published
/// snapshot, so it sees the last *committed* state and never blocks.
#[test]
fn snapshot_read_completes_while_writer_holds_the_db() {
    use std::sync::mpsc;

    let schema = clinic_schema();
    let env = seeded_env(&schema, 2);

    // A committed write first, so the published snapshot is mid-history
    // (not just the seed) — the reader must see exactly this state.
    env.query("UPDATE patient SET name = 'committed' WHERE patient_id = 1")
        .unwrap();

    // Wedge: hold the write lock and mutate the live database through
    // it, simulating a writer stalled mid-batch with half-applied state.
    let db = env.database();
    let mut guard = db.write().unwrap();
    guard
        .execute("UPDATE patient SET name = 'uncommitted' WHERE patient_id = 1")
        .unwrap();

    let (tx, rx) = mpsc::channel();
    {
        let env = env.clone();
        std::thread::spawn(move || {
            let rs = env
                .query("SELECT name FROM patient WHERE patient_id = 1")
                .unwrap();
            tx.send(rs).unwrap();
        });
    }
    let rs = rx
        .recv_timeout(Duration::from_secs(5))
        .expect("snapshot read must not block behind the held write lock");
    assert_eq!(
        rs.get(0, "name").unwrap().as_str(),
        Some("committed"),
        "reader observes the last committed state, not the in-flight write"
    );
    assert!(
        env.stats().snapshot_batches >= 1,
        "the read went down the snapshot path"
    );

    // Release the writer; subsequent reads observe its result.
    drop(guard);
    let rs = env
        .query("SELECT name FROM patient WHERE patient_id = 1")
        .unwrap();
    assert_eq!(rs.get(0, "name").unwrap().as_str(), Some("uncommitted"));
}

/// Satellite: the 64-session dispatcher stress suite. Thirty-two reader
/// sessions render dashboards over a never-written key range (checked
/// byte-for-byte against serial references) while thirty-two writer
/// sessions mix footprint-disjoint row updates with inserts into one
/// shared table (conflicting footprints that must serialize through
/// admission). A monitor thread snapshots env + dispatcher stats
/// throughout and requires every counter to be monotone — no torn or
/// backwards reads under contention. Afterwards every write must have
/// landed exactly once.
#[test]
fn stress_64_sessions_mixed_footprints_match_serial_references() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let schema = clinic_schema();
    let read_pids = 16i64; // readers touch 1..=16, writers own 17..=48
    let patients = 48i64;
    let env = seeded_env(&schema, patients);
    env.seed_sql("CREATE TABLE audit_log (id INT PRIMARY KEY, tag TEXT)")
        .unwrap();
    let dispatcher = Arc::new(Dispatcher::with_window(
        env.clone(),
        Duration::from_millis(1),
    ));
    let expected: Vec<String> = (1..=read_pids)
        .map(|pid| reference_page(&schema, patients, pid))
        .collect();

    let n = 64usize;
    let rounds = 3i64;
    let done = Arc::new(AtomicBool::new(false));

    // Monitor: counters may only move forward, even mid-dispatch.
    let monitor = {
        let env = env.clone();
        let dispatcher = Arc::clone(&dispatcher);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut last = env.stats();
            let mut last_d = dispatcher.stats();
            let mut samples = 0u64;
            while !done.load(Ordering::SeqCst) {
                let s = env.stats();
                let d = dispatcher.stats();
                assert!(s.queries >= last.queries, "queries tore: {s:?} < {last:?}");
                assert!(s.round_trips >= last.round_trips, "{s:?} < {last:?}");
                assert!(s.bytes >= last.bytes, "{s:?} < {last:?}");
                assert!(s.db_ns >= last.db_ns, "{s:?} < {last:?}");
                assert!(d.flushes >= last_d.flushes, "{d:?} < {last_d:?}");
                assert!(d.dispatches >= last_d.dispatches, "{d:?} < {last_d:?}");
                assert!(
                    d.dispatches <= d.flushes,
                    "dispatches can never exceed flushes: {d:?}"
                );
                last = s;
                last_d = d;
                samples += 1;
                std::thread::sleep(Duration::from_micros(200));
            }
            samples
        })
    };

    let barrier = Arc::new(Barrier::new(n));
    let handles: Vec<_> = (0..n)
        .map(|t| {
            let dispatcher = Arc::clone(&dispatcher);
            let schema = Arc::clone(&schema);
            let expected = expected.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                if t % 2 == 0 {
                    // Reader session: dashboards over the read-only range,
                    // byte-identical to the serial reference every round.
                    for round in 0..rounds {
                        let pid = 1 + ((t as i64 / 2 + round * 7) % read_pids);
                        let store = QueryStore::dispatched(Arc::clone(&dispatcher));
                        let session = Session::deferred(store, Arc::clone(&schema));
                        let page = render_dashboard(&session, pid);
                        assert_eq!(
                            page,
                            expected[(pid - 1) as usize],
                            "reader {t} round {round}"
                        );
                    }
                } else {
                    // Writer session: owns patient 17 + t/2 exclusively
                    // (footprint-disjoint from every other writer) and
                    // also inserts into the shared audit_log (conflicting
                    // footprints across all writers).
                    let pid = 17 + t as i64 / 2;
                    for round in 0..rounds {
                        let store = QueryStore::dispatched(Arc::clone(&dispatcher));
                        let read = store
                            .register(format!("SELECT name FROM patient WHERE patient_id = {pid}"))
                            .unwrap();
                        let write = store
                            .register(format!(
                                "UPDATE patient SET name = 'renamed-{pid}-{round}' \
                                 WHERE patient_id = {pid}"
                            ))
                            .unwrap();
                        let log = store
                            .register(format!(
                                "INSERT INTO audit_log VALUES ({}, 'w{t}r{round}')",
                                t as i64 * 10 + round
                            ))
                            .unwrap();
                        let before = store.result(read).unwrap();
                        let want = if round == 0 {
                            format!("patient-{pid}")
                        } else {
                            format!("renamed-{pid}-{}", round - 1)
                        };
                        assert_eq!(
                            before.get(0, "name").unwrap().as_str(),
                            Some(want.as_str()),
                            "writer {t} round {round}"
                        );
                        assert!(store.result(write).unwrap().is_empty());
                        assert!(store.result(log).unwrap().is_empty());
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    done.store(true, Ordering::SeqCst);
    let samples = monitor.join().unwrap();
    assert!(samples > 0, "the monitor observed the run");

    // Exactly-once write effects: each writer's final rename landed, and
    // every audit row exists exactly once (the PRIMARY KEY would have
    // rejected any double-applied insert mid-run).
    for t in (1..n).step_by(2) {
        let pid = 17 + t as i64 / 2;
        let rs = env
            .query(&format!(
                "SELECT name FROM patient WHERE patient_id = {pid}"
            ))
            .unwrap();
        assert_eq!(
            rs.get(0, "name").unwrap().as_str(),
            Some(format!("renamed-{pid}-{}", rounds - 1).as_str())
        );
    }
    let log = env.query("SELECT id FROM audit_log ORDER BY id").unwrap();
    assert_eq!(log.len(), (n / 2) * rounds as usize, "every insert landed");
    let ids: Vec<i64> = (0..log.len())
        .map(|r| log.get(r, "id").unwrap().as_i64().unwrap())
        .collect();
    let mut deduped = ids.clone();
    deduped.dedup();
    assert_eq!(ids, deduped, "no insert was applied twice");

    let d = dispatcher.stats();
    assert!(d.dispatches < d.flushes, "coalescing happened: {d:?}");
    assert!(d.coalesced_batches > 0, "{d:?}");
}
