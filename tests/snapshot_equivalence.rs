//! MVCC snapshot-read equivalence, property-tested across the whole
//! driver grid: with snapshot reads **on**, every configuration —
//! deferral × fusion × result cache × shards ∈ {1, 2, 4} × dispatcher —
//! must produce per-statement results, final database state and error
//! behaviour byte-identical to the snapshot-off serial reference.
//!
//! Snapshot reads change *when the database lock is taken*, never what a
//! batch observes: a read-only batch executes against the snapshot the
//! last committed write batch published, and sequential submission means
//! that snapshot always reflects every prior write. These tests pin that
//! visibility rule; the concurrent overlap behaviour is covered by the
//! reader-wedge tests in `concurrency.rs` and the snapshot figure.
//!
//! Deterministic SplitMix64 cases (no third-party crates available);
//! failures print the generating batch or stream.

use std::sync::Arc;

use sloth_core::QueryStore;
use sloth_net::{CostModel, Dispatcher, ShardedEnv, SimEnv};
use sloth_sql::{ShardSpec, Value};

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9E3779B97F4A7C15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % (hi - lo) as u64) as i64
    }
}

fn seed_statements() -> Vec<String> {
    let mut s = vec![
        "CREATE TABLE project (id INT PRIMARY KEY, name TEXT)".to_string(),
        "CREATE TABLE issue (id INT PRIMARY KEY, project_id INT, title TEXT, sev INT)".to_string(),
        "CREATE INDEX ON issue (project_id)".to_string(),
    ];
    for p in 0..8 {
        s.push(format!("INSERT INTO project VALUES ({p}, 'proj{p}')"));
    }
    for i in 0..40 {
        s.push(format!(
            "INSERT INTO issue VALUES ({i}, {}, 'bug{}', {})",
            i % 8,
            i % 5,
            i % 4
        ));
    }
    s
}

fn fresh_env() -> SimEnv {
    let env = SimEnv::default_env();
    for sql in seed_statements() {
        env.seed_sql(&sql).unwrap();
    }
    env
}

fn fresh_sharded(n: usize) -> SimEnv {
    let spec = ShardSpec::new().shard("issue", "project_id");
    let fleet = ShardedEnv::new(CostModel::default(), spec, n);
    let env = fleet.handle();
    for sql in seed_statements() {
        env.seed_sql(&sql).unwrap();
    }
    env
}

fn backend(shards: usize) -> SimEnv {
    if shards == 1 {
        fresh_env()
    } else {
        fresh_sharded(shards)
    }
}

/// A random read statement, biased towards the snapshot path's
/// interesting shapes: fusable point lookups (IN-probe fusion on the
/// snapshot), scatter reads, ordered merges, and re-aggregation.
fn arb_read(rng: &mut Rng) -> String {
    match rng.range(0, 8) {
        0..=2 => format!(
            "SELECT * FROM issue WHERE project_id = {} ORDER BY id",
            rng.range(0, 10)
        ),
        3 => format!("SELECT title FROM issue WHERE id = {}", rng.range(0, 45)),
        4 => format!("SELECT * FROM project WHERE id = {}", rng.range(0, 10)),
        5 => format!(
            "SELECT id FROM issue WHERE sev >= {} ORDER BY id DESC LIMIT 6",
            rng.range(0, 4)
        ),
        6 => format!(
            "SELECT COUNT(*) FROM issue WHERE sev >= {}",
            rng.range(0, 4)
        ),
        _ => "SELECT * FROM issue ORDER BY title, id".to_string(),
    }
}

/// A random write statement over the same key space.
fn arb_write(rng: &mut Rng, next_insert_id: &mut i64) -> String {
    match rng.range(0, 5) {
        0 | 1 => format!(
            "UPDATE issue SET sev = {} WHERE project_id = {}",
            rng.range(0, 9),
            rng.range(0, 10)
        ),
        2 => format!(
            "UPDATE project SET name = 'renamed{}' WHERE id = {}",
            rng.range(0, 4),
            rng.range(0, 10)
        ),
        3 => format!("DELETE FROM issue WHERE id = {}", rng.range(30, 45)),
        _ => {
            let id = *next_insert_id;
            *next_insert_id += 1;
            format!(
                "INSERT INTO issue (id, project_id, title, sev) VALUES ({id}, {}, 's{id}', {})",
                rng.range(0, 8),
                rng.range(0, 4)
            )
        }
    }
}

/// A random batch: read-only with probability ~1/2 (the snapshot path),
/// mixed otherwise (the write path, which must publish what the next
/// read-only batch observes).
fn arb_batch(rng: &mut Rng, next_insert_id: &mut i64) -> Vec<String> {
    let len = rng.range(1, 8);
    let read_only = rng.range(0, 2) == 0;
    (0..len)
        .map(|_| {
            if read_only || rng.range(0, 3) > 0 {
                arb_read(rng)
            } else {
                arb_write(rng, next_insert_id)
            }
        })
        .collect()
}

fn state_fingerprint(env: &SimEnv) -> Vec<Vec<Value>> {
    let mut rows = env
        .query("SELECT id, project_id, title, sev FROM issue ORDER BY id")
        .unwrap()
        .rows;
    rows.extend(
        env.query("SELECT id, name FROM project ORDER BY id")
            .unwrap()
            .rows,
    );
    rows
}

/// The core batch-level grid: snapshot on vs snapshot off vs the serial
/// single-server reference, across fusion × result cache × shards, on
/// sequences of random batches. Sequential submission means every
/// read-only batch's admission snapshot already reflects all prior
/// writes, so all three must agree byte for byte.
#[test]
fn random_batch_sequences_snapshot_on_equals_off() {
    let mut snapshot_batches_total = 0u64;
    for case in 0..24u64 {
        for shards in [1usize, 2, 4] {
            for fusion in [true, false] {
                for cache in [true, false] {
                    let mut rng = Rng::new(0x54AB_5407 ^ (case << 5) ^ (shards as u64));
                    let mut next_id = 200;
                    let batches: Vec<Vec<String>> = (0..rng.range(2, 6))
                        .map(|_| arb_batch(&mut rng, &mut next_id))
                        .collect();
                    let label =
                        format!("case {case} shards={shards} fusion={fusion} cache={cache}");

                    let serial = fresh_env();
                    serial.set_snapshot_reads(false);
                    let snap_on = backend(shards);
                    let snap_off = backend(shards);
                    for env in [&snap_on, &snap_off] {
                        env.set_fusion(fusion);
                        env.set_result_cache(cache);
                    }
                    snap_on.set_snapshot_reads(true);
                    snap_off.set_snapshot_reads(false);

                    for (b, batch) in batches.iter().enumerate() {
                        let want: Vec<_> = batch
                            .iter()
                            .map(|sql| {
                                serial
                                    .query(sql)
                                    .unwrap_or_else(|e| panic!("{label}: serial {sql}: {e}"))
                            })
                            .collect();
                        let on = snap_on
                            .query_batch(batch)
                            .unwrap_or_else(|e| panic!("{label}: snapshot-on batch {b}: {e}"));
                        let off = snap_off
                            .query_batch(batch)
                            .unwrap_or_else(|e| panic!("{label}: snapshot-off batch {b}: {e}"));
                        assert_eq!(on, want, "{label}: batch {b} on≠serial: {batch:#?}");
                        assert_eq!(off, want, "{label}: batch {b} off≠serial: {batch:#?}");
                    }
                    assert_eq!(
                        state_fingerprint(&snap_on),
                        state_fingerprint(&serial),
                        "{label}: final state (snapshot on) diverged"
                    );
                    assert_eq!(
                        state_fingerprint(&snap_off),
                        state_fingerprint(&serial),
                        "{label}: final state (snapshot off) diverged"
                    );
                    snapshot_batches_total += snap_on.snapshot_batches();
                    assert_eq!(
                        snap_off.snapshot_batches(),
                        0,
                        "{label}: snapshot-off env must never serve from a snapshot"
                    );
                }
            }
        }
    }
    assert!(
        snapshot_batches_total > 0,
        "the suite must actually exercise the snapshot path"
    );
}

/// The store-level grid: random registration streams through the query
/// store (deferral's natural habitat) with snapshot reads on, across
/// deferral × fusion × result cache × shards. Every result and the final
/// state must match the statement-at-a-time serial reference.
#[test]
fn random_streams_snapshot_grid_matches_serial_reference() {
    for case in 0..12u64 {
        for deferral in [true, false] {
            for fusion in [true, false] {
                for cache in [true, false] {
                    for shards in [1usize, 2, 4] {
                        let mut rng = Rng::new(0x5AB5_11A1 ^ (case << 6) ^ (shards as u64));
                        let mut next_id = 600;
                        let n = rng.range(4, 20);
                        let stream: Vec<String> = (0..n)
                            .map(|_| {
                                if rng.range(0, 3) == 0 {
                                    arb_write(&mut rng, &mut next_id)
                                } else {
                                    arb_read(&mut rng)
                                }
                            })
                            .collect();
                        let label = format!(
                            "case {case} deferral={deferral} fusion={fusion} \
                             cache={cache} shards={shards}"
                        );

                        let serial = fresh_env();
                        serial.set_snapshot_reads(false);
                        let want: Vec<_> = stream
                            .iter()
                            .map(|sql| {
                                serial
                                    .query(sql)
                                    .unwrap_or_else(|e| panic!("{label}: serial {sql}: {e}"))
                            })
                            .collect();

                        let env = backend(shards);
                        env.set_write_deferral(deferral);
                        env.set_fusion(fusion);
                        env.set_result_cache(cache);
                        env.set_snapshot_reads(true);
                        let store = QueryStore::new(env.clone());
                        let ids: Vec<_> = stream
                            .iter()
                            .map(|sql| {
                                store.register(sql.clone()).unwrap_or_else(|e| {
                                    panic!("{label}: register {sql}: {e} ({stream:#?})")
                                })
                            })
                            .collect();
                        store
                            .flush()
                            .unwrap_or_else(|e| panic!("{label}: flush: {e} ({stream:#?})"));
                        for (i, id) in ids.iter().enumerate() {
                            assert_eq!(
                                store.result(*id).unwrap(),
                                want[i],
                                "{label}: statement {i} ({}) diverged ({stream:#?})",
                                stream[i]
                            );
                        }
                        assert_eq!(
                            state_fingerprint(&env),
                            state_fingerprint(&serial),
                            "{label}: final state diverged ({stream:#?})"
                        );
                    }
                }
            }
        }
    }
}

/// First-error equivalence on the snapshot path: a read-only batch whose
/// k-th statement fails must surface the same error, in the same
/// position, as the serial reference — the snapshot arm of the
/// error-timing contract.
#[test]
fn failing_read_batches_snapshot_matches_serial_error() {
    for case in 0..12u64 {
        for shards in [1usize, 2] {
            let mut rng = Rng::new(0xE44 ^ (case << 2) ^ shards as u64);
            let mut batch: Vec<String> = (0..rng.range(1, 5)).map(|_| arb_read(&mut rng)).collect();
            let at = rng.range(0, batch.len() as i64) as usize;
            batch.insert(at, "SELECT v FROM missing WHERE id = 1".to_string());

            let serial = fresh_env();
            serial.set_snapshot_reads(false);
            let mut serial_err = None;
            for sql in &batch {
                if let Err(e) = serial.query(sql) {
                    serial_err = Some(e);
                    break;
                }
            }
            let serial_err = serial_err.expect("the injected read must fail");

            let env = backend(shards);
            env.set_snapshot_reads(true);
            let err = env
                .query_batch(&batch)
                .expect_err("snapshot batch must surface the read error");
            assert_eq!(
                err, serial_err,
                "case {case} shards={shards}: first error diverged: {batch:#?}"
            );
        }
    }
}

/// The dispatcher arm: concurrent read-only sessions ride the snapshot
/// path through the shared dispatcher while writer sessions churn
/// disjoint rows. Every reader's rows are rows no writer touches, so
/// each session's results must equal its own serial reference — while
/// the deployment actually serves snapshot batches underneath.
#[test]
fn dispatched_readers_on_snapshots_match_serial_under_writers() {
    use std::sync::Barrier;
    let env = fresh_env();
    env.set_snapshot_reads(true);
    let dispatcher = Arc::new(Dispatcher::with_window(
        env.clone(),
        std::time::Duration::from_millis(5),
    ));
    let readers = 4usize;
    let writers = 2usize;
    let barrier = Arc::new(Barrier::new(readers + writers));

    // Readers own project ids 0..4 (rows writers never touch: writers
    // update only ids ≥ 30, which seed as project_id 6 and 7).
    let reader_handles: Vec<_> = (0..readers)
        .map(|t| {
            let d = Arc::clone(&dispatcher);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let serial = fresh_env();
                let mut rng = Rng::new(0x5EAD ^ t as u64);
                let stream: Vec<String> = (0..10)
                    .map(|_| {
                        format!(
                            "SELECT id, title FROM issue WHERE project_id = {} ORDER BY id",
                            rng.range(0, 4)
                        )
                    })
                    .collect();
                let expected: Vec<_> = stream.iter().map(|s| serial.query(s).unwrap()).collect();
                barrier.wait();
                let store = QueryStore::dispatched(d);
                let ids: Vec<_> = stream
                    .iter()
                    .map(|s| store.register(s.clone()).unwrap())
                    .collect();
                store.flush().unwrap();
                for (i, id) in ids.iter().enumerate() {
                    assert_eq!(
                        store.result(*id).unwrap(),
                        expected[i],
                        "reader {t} stmt {i} ({})",
                        stream[i]
                    );
                }
            })
        })
        .collect();
    let writer_handles: Vec<_> = (0..writers)
        .map(|t| {
            let d = Arc::clone(&dispatcher);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let store = QueryStore::dispatched(d);
                for round in 0..8 {
                    let id = 30 + (t as i64 * 5) + (round % 5);
                    store
                        .register(format!("UPDATE issue SET sev = {round} WHERE id = {id}"))
                        .unwrap();
                    store.flush().unwrap();
                }
            })
        })
        .collect();
    for h in reader_handles {
        h.join().unwrap();
    }
    for h in writer_handles {
        h.join().unwrap();
    }
    assert!(
        env.snapshot_batches() > 0,
        "readers must have been served from published snapshots: {:?}",
        env.stats()
    );
}
