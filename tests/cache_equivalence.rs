//! Result-cache equivalence, property-tested at the query-store **and**
//! raw driver level: random write-mixed registration streams (the
//! `deferral_equivalence.rs` generator) must produce per-statement
//! results, final database state and error behaviour byte-identical to a
//! cache-off serial reference — across cache on × deferral on/off ×
//! fusion on/off × shards ∈ {1, 2, 4}, and through the multi-session
//! dispatcher. A dedicated **staleness canary** hammers repeat reads
//! around conflicting writes: a read that conflicts with ANY earlier
//! write in the stream must never be served from a pre-write entry.
//!
//! Deterministic SplitMix64 cases (no third-party crates available);
//! failures print the generating stream.

use std::sync::Arc;

use sloth_core::QueryStore;
use sloth_net::{CostModel, Dispatcher, ShardedEnv, SimEnv};
use sloth_sql::{ShardSpec, Value};

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9E3779B97F4A7C15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % (hi - lo) as u64) as i64
    }
}

fn seed_statements() -> Vec<String> {
    let mut s = vec![
        "CREATE TABLE project (id INT PRIMARY KEY, name TEXT)".to_string(),
        "CREATE TABLE issue (id INT PRIMARY KEY, project_id INT, title TEXT, sev INT)".to_string(),
        "CREATE INDEX ON issue (project_id)".to_string(),
    ];
    for p in 0..8 {
        s.push(format!("INSERT INTO project VALUES ({p}, 'proj{p}')"));
    }
    for i in 0..40 {
        s.push(format!(
            "INSERT INTO issue VALUES ({i}, {}, 'bug{}', {})",
            i % 8,
            i % 5,
            i % 4
        ));
    }
    s
}

fn fresh_env() -> SimEnv {
    let env = SimEnv::default_env();
    for sql in seed_statements() {
        env.seed_sql(&sql).unwrap();
    }
    env
}

fn fresh_sharded(n: usize) -> SimEnv {
    let spec = ShardSpec::new().shard("issue", "id").shard("project", "id");
    let fleet = ShardedEnv::new(CostModel::default(), spec, n);
    let env = fleet.handle();
    for sql in seed_statements() {
        env.seed_sql(&sql).unwrap();
    }
    env
}

/// One step of a registration stream: a statement to register, or a
/// force of the `n`-th registered statement so far.
#[derive(Debug, Clone)]
enum Op {
    Stmt(String),
    Force(usize),
}

/// The `deferral_equivalence.rs` write-mixed stream generator, with one
/// cache-specific twist: a healthy share of **verbatim repeat reads**
/// (same template, same params), so hit-eligible probes actually occur
/// in most cases instead of by luck.
fn arb_stream(rng: &mut Rng, next_insert_id: &mut i64) -> Vec<Op> {
    let n = rng.range(3, 28);
    let mut ops = Vec::new();
    let mut registered = 0usize;
    let mut reads: Vec<String> = Vec::new();
    for _ in 0..n {
        let pick = rng.range(0, 13);
        let op = match pick {
            // Point reads (fusable templates) and scans.
            0..=2 => Op::Stmt(format!(
                "SELECT * FROM issue WHERE project_id = {} ORDER BY id",
                rng.range(0, 10)
            )),
            3 => Op::Stmt(format!(
                "SELECT * FROM project WHERE id = {}",
                rng.range(0, 10)
            )),
            4 => Op::Stmt(format!(
                "SELECT COUNT(*) FROM issue WHERE project_id = {}",
                rng.range(0, 10)
            )),
            // Writes: routed updates (often disjoint, sometimes
            // conflicting with earlier reads/writes), inserts, deletes.
            5 | 6 => Op::Stmt(format!(
                "UPDATE issue SET sev = {} WHERE project_id = {}",
                rng.range(0, 9),
                rng.range(0, 10)
            )),
            7 => Op::Stmt(format!(
                "UPDATE project SET name = 'renamed{}' WHERE id = {}",
                rng.range(0, 4),
                rng.range(0, 10)
            )),
            8 => {
                let id = *next_insert_id;
                *next_insert_id += 1;
                Op::Stmt(format!(
                    "INSERT INTO issue (id, project_id, title, sev) VALUES ({id}, {}, 'w{id}', {})",
                    rng.range(0, 8),
                    rng.range(0, 4)
                ))
            }
            9 => Op::Stmt(format!(
                "DELETE FROM issue WHERE id = {}",
                rng.range(30, 45)
            )),
            // Occasional transaction boundary: a barrier drain (and a
            // whole-cache invalidation).
            10 if rng.range(0, 3) == 0 => Op::Stmt("COMMIT".to_string()),
            // Verbatim repeat of an earlier read: the cache's bread and
            // butter — and, right after a conflicting write, its trap.
            11 if !reads.is_empty() => {
                let i = rng.range(0, reads.len() as i64) as usize;
                Op::Stmt(reads[i].clone())
            }
            // Force a random already-registered statement.
            _ if registered > 0 => Op::Force(rng.range(0, registered as i64) as usize),
            _ => Op::Stmt(format!(
                "SELECT * FROM project WHERE id = {}",
                rng.range(0, 8)
            )),
        };
        if let Op::Stmt(sql) = &op {
            registered += 1;
            if sql.starts_with("SELECT") {
                reads.push(sql.clone());
            }
        }
        ops.push(op);
    }
    ops
}

fn state_fingerprint(env: &SimEnv) -> Vec<Vec<Value>> {
    let mut rows = env
        .query("SELECT id, project_id, title, sev FROM issue ORDER BY id")
        .unwrap()
        .rows;
    rows.extend(
        env.query("SELECT id, name FROM project ORDER BY id")
            .unwrap()
            .rows,
    );
    rows
}

/// Runs a stream through one cache-on store configuration and checks
/// every registered statement's result against the cache-off serial
/// reference.
fn check_stream(ops: &[Op], env: SimEnv, label: &str) {
    // Serial reference: a separate cache-off deployment, one statement
    // per round trip in registration order.
    let serial = fresh_env();
    let sqls: Vec<&String> = ops
        .iter()
        .filter_map(|o| match o {
            Op::Stmt(s) => Some(s),
            Op::Force(_) => None,
        })
        .collect();
    let serial_results: Vec<_> = sqls
        .iter()
        .map(|sql| {
            serial
                .query(sql)
                .unwrap_or_else(|e| panic!("{label}: serial {sql}: {e}"))
        })
        .collect();

    let store = QueryStore::new(env.clone());
    let mut ids = Vec::new();
    for op in ops {
        match op {
            Op::Stmt(sql) => {
                let id = store
                    .register(sql.clone())
                    .unwrap_or_else(|e| panic!("{label}: register {sql}: {e} (ops {ops:#?})"));
                ids.push(id);
            }
            Op::Force(i) => {
                store
                    .result(ids[*i])
                    .unwrap_or_else(|e| panic!("{label}: force {i}: {e} (ops {ops:#?})"));
            }
        }
    }
    store
        .flush()
        .unwrap_or_else(|e| panic!("{label}: final flush: {e} (ops {ops:#?})"));
    for (i, id) in ids.iter().enumerate() {
        let got = store
            .result(*id)
            .unwrap_or_else(|e| panic!("{label}: result {i}: {e} (ops {ops:#?})"));
        assert_eq!(
            got, serial_results[i],
            "{label}: statement {i} ({}) diverged (ops {ops:#?})",
            sqls[i]
        );
    }
    assert_eq!(
        state_fingerprint(&env),
        state_fingerprint(&serial),
        "{label}: final state diverged (ops {ops:#?})"
    );
}

/// The main grid: cache on × deferral × fusion × shards, 40 random
/// streams each, against the cache-off serial reference. Hits must
/// actually occur somewhere in the grid, or the suite proves nothing.
#[test]
fn cached_streams_match_cache_off_serial_reference() {
    let mut hits_total = 0u64;
    let mut invalidations_total = 0u64;
    for case in 0..40u64 {
        let mut rng = Rng::new(0x0CAC_4E11 ^ case);
        let mut next_id = 500;
        let ops = arb_stream(&mut rng, &mut next_id);
        for deferral in [true, false] {
            for fusion in [true, false] {
                for shards in [1usize, 2, 4] {
                    let env = if shards == 1 {
                        fresh_env()
                    } else {
                        fresh_sharded(shards)
                    };
                    env.set_result_cache(true);
                    env.set_write_deferral(deferral);
                    env.set_fusion(fusion);
                    let label = format!(
                        "case {case} cache=on deferral={deferral} fusion={fusion} shards={shards}"
                    );
                    check_stream(&ops, env.clone(), &label);
                    let s = env.result_cache_stats();
                    hits_total += s.hits;
                    invalidations_total += s.invalidations;
                }
            }
        }
    }
    assert!(hits_total > 0, "the grid never hit the cache");
    assert!(
        invalidations_total > 0,
        "the grid never invalidated an entry"
    );
}

/// Staleness canary at the raw driver level (statement-at-a-time, so
/// every repeat read is a hit-eligible probe): a read that conflicts
/// with ANY earlier write must never answer from a pre-write entry —
/// checked by byte-comparing every single result against a cache-off
/// twin executing the same stream.
#[test]
fn staleness_canary_every_read_postdates_every_conflicting_write() {
    let mut hits_total = 0u64;
    for case in 0..60u64 {
        let mut rng = Rng::new(0x57A1E ^ case);
        let mut next_id = 800;
        let sqls: Vec<String> = arb_stream(&mut rng, &mut next_id)
            .into_iter()
            .filter_map(|op| match op {
                Op::Stmt(s) => Some(s),
                Op::Force(_) => None,
            })
            .collect();
        let cached = fresh_env();
        cached.set_result_cache(true);
        let plain = fresh_env();
        for (i, sql) in sqls.iter().enumerate() {
            let a = cached.query(sql);
            let b = plain.query(sql);
            assert_eq!(
                a, b,
                "case {case}: statement {i} ({sql}) served stale (stream {sqls:#?})"
            );
        }
        assert_eq!(
            state_fingerprint(&cached),
            state_fingerprint(&plain),
            "case {case}: final state diverged (stream {sqls:#?})"
        );
        hits_total += cached.result_cache_stats().hits;
    }
    assert!(hits_total > 0, "the canary never actually hit the cache");
}

/// The cache must never cost round trips or shipped statements, and
/// across the suite it must strictly save work (the whole point). A
/// round trip only disappears when **every** position in a batch hits,
/// so the strict-savings signal is shipped statements; trips are held to
/// never-worse.
#[test]
fn cache_never_adds_round_trips() {
    let mut saved_total = 0i64;
    for case in 0..40u64 {
        let mut rng = Rng::new(0xCA5E ^ case);
        let mut next_id = 900;
        let ops = arb_stream(&mut rng, &mut next_id);
        let mut trips = Vec::new();
        let mut queries = Vec::new();
        for cache in [false, true] {
            let env = fresh_env();
            env.set_result_cache(cache);
            let store = QueryStore::new(env.clone());
            let mut ids = Vec::new();
            for op in &ops {
                match op {
                    Op::Stmt(sql) => ids.push(store.register(sql.clone()).unwrap()),
                    Op::Force(i) => {
                        store.result(ids[*i]).unwrap();
                    }
                }
            }
            store.flush().unwrap();
            trips.push(env.stats().round_trips);
            queries.push(env.stats().queries);
        }
        assert!(
            trips[1] <= trips[0],
            "case {case}: cache added trips ({} vs {}): {ops:#?}",
            trips[1],
            trips[0]
        );
        assert!(
            queries[1] <= queries[0],
            "case {case}: cache shipped more statements ({} vs {}): {ops:#?}",
            queries[1],
            queries[0]
        );
        saved_total += queries[0] as i64 - queries[1] as i64;
    }
    assert!(saved_total > 0, "cache saved nothing across the suite");
}

/// Cross-session invalidation through the shared dispatcher,
/// deterministically sequenced: session A caches a read, session B ships
/// a conflicting write through its own store, session A's repeat read
/// must observe it (and a disjoint entry must survive and keep hitting).
#[test]
fn dispatched_cross_session_write_kills_the_entry() {
    let env = fresh_env();
    env.set_result_cache(true);
    let d = Arc::new(Dispatcher::new(env.clone()));
    let a = QueryStore::dispatched(Arc::clone(&d));
    let b = QueryStore::dispatched(Arc::clone(&d));

    let read3 = "SELECT sev FROM issue WHERE id = 3".to_string();
    let read4 = "SELECT sev FROM issue WHERE id = 4".to_string();
    let ra = a.register(read3.clone()).unwrap();
    let ra4 = a.register(read4.clone()).unwrap();
    a.flush().unwrap();
    let before = a.result(ra).unwrap();
    a.result(ra4).unwrap();

    let w = b
        .register_stmt("UPDATE issue SET sev = 7 WHERE id = 3")
        .unwrap();
    b.flush().unwrap();
    b.result(w.id).unwrap();
    assert!(
        env.result_cache_stats().invalidations >= 1,
        "B's write must invalidate A's cached read: {:?}",
        env.result_cache_stats()
    );

    let trips = env.stats().round_trips;
    let ra2 = a.register(read3).unwrap();
    a.flush().unwrap();
    let after = a.result(ra2).unwrap();
    assert_ne!(before, after, "A observed B's write");
    assert_eq!(after.rows[0][0], Value::Int(7));
    assert!(
        env.stats().round_trips > trips,
        "the killed entry really re-fetched"
    );
    // The disjoint id = 4 entry survived B's pinned write and still hits.
    let hits = env.result_cache_stats().hits;
    let trips = env.stats().round_trips;
    let ra4b = a.register(read4).unwrap();
    a.flush().unwrap();
    a.result(ra4b).unwrap();
    assert_eq!(env.stats().round_trips, trips, "disjoint entry answered");
    assert_eq!(env.result_cache_stats().hits, hits + 1);
}

/// Multi-session dispatcher under concurrency: disjoint row ranges, the
/// cache on — per-session results must match each session's own serial
/// reference and every write effect applies exactly once.
#[test]
fn dispatched_sessions_with_cache_match_serial_reference() {
    use std::sync::Barrier;
    let env = fresh_env();
    env.set_result_cache(true);
    let dispatcher = Arc::new(Dispatcher::with_window(
        env.clone(),
        std::time::Duration::from_millis(15),
    ));
    let n = 4usize;
    let rows_per = 10i64;
    let barrier = Arc::new(Barrier::new(n));
    let handles: Vec<_> = (0..n)
        .map(|t| {
            let d = Arc::clone(&dispatcher);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let base = t as i64 * rows_per;
                let mut rng = Rng::new(0xCAC4ED ^ t as u64);
                // Repeat reads interleaved with own-row writes: the cache
                // must keep every session's view exact while other
                // sessions' flushes fill and invalidate around it.
                let serial = fresh_env();
                let mut stream = Vec::new();
                for _ in 0..16 {
                    let row = base + rng.range(0, rows_per);
                    if rng.range(0, 2) == 0 {
                        stream.push(format!("SELECT sev FROM issue WHERE id = {row}"));
                    } else {
                        stream.push(format!("UPDATE issue SET sev = sev + 1 WHERE id = {row}"));
                    }
                }
                let expected: Vec<_> = stream
                    .iter()
                    .map(|sql| serial.query(sql).unwrap())
                    .collect();

                barrier.wait();
                let store = QueryStore::dispatched(d);
                let ids: Vec<_> = stream
                    .iter()
                    .map(|sql| store.register(sql.clone()).unwrap())
                    .collect();
                store.flush().unwrap();
                for (i, id) in ids.iter().enumerate() {
                    assert_eq!(
                        store.result(*id).unwrap(),
                        expected[i],
                        "session {t} stmt {i} ({})",
                        stream[i]
                    );
                }
                serial
            })
        })
        .collect();
    let serials: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    // Exact-once effects: each row's final sev equals its own session's
    // serial outcome.
    for (t, serial) in serials.iter().enumerate() {
        let base = t as i64 * rows_per;
        for row in base..base + rows_per {
            let got = env
                .query(&format!("SELECT sev FROM issue WHERE id = {row}"))
                .unwrap();
            let want = serial
                .query(&format!("SELECT sev FROM issue WHERE id = {row}"))
                .unwrap();
            assert_eq!(got, want, "row {row} of session {t}");
        }
    }
}
