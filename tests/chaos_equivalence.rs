//! Chaos equivalence, property-tested at the **query store** level:
//! random registration streams executed under a deterministic
//! fault-injected network (dropped trips, timeouts past the deadline,
//! per-shard outage windows) must produce per-statement results and
//! final database state identical to a fault-free statement-at-a-time
//! serial reference — across deferral on/off × fusion on/off ×
//! shards ∈ {1, 2, 4}, and through the multi-session dispatcher.
//!
//! Any *absorbable* fault schedule (one the bounded retry policy can
//! ride out) must be invisible except in the cost counters. Timed-out
//! write batches executed server-side replay through the at-most-once
//! journal, so effects land exactly once.
//!
//! Deterministic SplitMix64 cases (no third-party crates available);
//! failures print the generating seed and stream.

use std::sync::Arc;

use sloth_core::QueryStore;
use sloth_net::{CostModel, Dispatcher, FaultPlan, FaultStats, RetryPolicy, ShardedEnv, SimEnv};
use sloth_sql::{ShardSpec, Value};

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9E3779B97F4A7C15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % (hi - lo) as u64) as i64
    }
}

fn seed_statements() -> Vec<String> {
    let mut s = vec![
        "CREATE TABLE project (id INT PRIMARY KEY, name TEXT)".to_string(),
        "CREATE TABLE issue (id INT PRIMARY KEY, project_id INT, title TEXT, sev INT)".to_string(),
        "CREATE INDEX ON issue (project_id)".to_string(),
    ];
    for p in 0..8 {
        s.push(format!("INSERT INTO project VALUES ({p}, 'proj{p}')"));
    }
    for i in 0..40 {
        s.push(format!(
            "INSERT INTO issue VALUES ({i}, {}, 'bug{}', {})",
            i % 8,
            i % 5,
            i % 4
        ));
    }
    s
}

fn fresh_env() -> SimEnv {
    let env = SimEnv::default_env();
    for sql in seed_statements() {
        env.seed_sql(&sql).unwrap();
    }
    env
}

fn fresh_sharded(n: usize) -> SimEnv {
    let spec = ShardSpec::new().shard("issue", "id").shard("project", "id");
    let fleet = ShardedEnv::new(CostModel::default(), spec, n);
    let env = fleet.handle();
    for sql in seed_statements() {
        env.seed_sql(&sql).unwrap();
    }
    env
}

/// A generous retry budget: the chaos plans below are absorbable under
/// it by construction (independent 12% drop + 6% timeout per trip).
fn chaos_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 8,
        ..Default::default()
    }
}

/// The reference chaos plan for a case: transient drops and timeouts at
/// rates high enough that most streams hit several of each.
fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan::seeded(seed).drops(120).timeouts(60, 8)
}

/// One step of a registration stream: a statement to register, or a
/// force of the `n`-th registered statement so far.
#[derive(Debug, Clone)]
enum Op {
    Stmt(String),
    Force(usize),
}

/// A random write-heavy stream over valid statements only (genuine SQL
/// errors are never retried and have their own tests).
fn arb_stream(rng: &mut Rng, next_insert_id: &mut i64) -> Vec<Op> {
    let n = rng.range(3, 28);
    let mut ops = Vec::new();
    let mut registered = 0usize;
    for _ in 0..n {
        let pick = rng.range(0, 12);
        let op = match pick {
            0..=2 => Op::Stmt(format!(
                "SELECT * FROM issue WHERE project_id = {} ORDER BY id",
                rng.range(0, 10)
            )),
            3 => Op::Stmt(format!(
                "SELECT * FROM project WHERE id = {}",
                rng.range(0, 10)
            )),
            4 => Op::Stmt(format!(
                "SELECT COUNT(*) FROM issue WHERE project_id = {}",
                rng.range(0, 10)
            )),
            5 | 6 => Op::Stmt(format!(
                "UPDATE issue SET sev = {} WHERE project_id = {}",
                rng.range(0, 9),
                rng.range(0, 10)
            )),
            7 => Op::Stmt(format!(
                "UPDATE project SET name = 'renamed{}' WHERE id = {}",
                rng.range(0, 4),
                rng.range(0, 10)
            )),
            8 => {
                let id = *next_insert_id;
                *next_insert_id += 1;
                Op::Stmt(format!(
                    "INSERT INTO issue (id, project_id, title, sev) VALUES ({id}, {}, 'w{id}', {})",
                    rng.range(0, 8),
                    rng.range(0, 4)
                ))
            }
            9 => Op::Stmt(format!(
                "DELETE FROM issue WHERE id = {}",
                rng.range(30, 45)
            )),
            10 if rng.range(0, 3) == 0 => Op::Stmt("COMMIT".to_string()),
            _ if registered > 0 => Op::Force(rng.range(0, registered as i64) as usize),
            _ => Op::Stmt(format!(
                "SELECT * FROM project WHERE id = {}",
                rng.range(0, 8)
            )),
        };
        if matches!(op, Op::Stmt(_)) {
            registered += 1;
        }
        ops.push(op);
    }
    ops
}

fn state_fingerprint(env: &SimEnv) -> Vec<Vec<Value>> {
    let mut rows = env
        .query("SELECT id, project_id, title, sev FROM issue ORDER BY id")
        .unwrap()
        .rows;
    rows.extend(
        env.query("SELECT id, name FROM project ORDER BY id")
            .unwrap()
            .rows,
    );
    rows
}

/// Runs a stream under a fault plan and checks every registered
/// statement's result against the fault-free serial reference. Returns
/// the fault counters the run accumulated (read before the plan is
/// cleared — clearing zeroes them).
fn check_chaos_stream(ops: &[Op], env: SimEnv, plan: FaultPlan, label: &str) -> FaultStats {
    let serial = fresh_env();
    let sqls: Vec<&String> = ops
        .iter()
        .filter_map(|o| match o {
            Op::Stmt(s) => Some(s),
            Op::Force(_) => None,
        })
        .collect();
    let serial_results: Vec<_> = sqls
        .iter()
        .map(|sql| {
            serial
                .query(sql)
                .unwrap_or_else(|e| panic!("{label}: serial {sql}: {e}"))
        })
        .collect();

    env.set_retry_policy(chaos_policy());
    env.set_faults(Some(plan));
    let store = QueryStore::new(env.clone());
    let mut ids = Vec::new();
    for op in ops {
        match op {
            Op::Stmt(sql) => {
                let id = store
                    .register(sql.clone())
                    .unwrap_or_else(|e| panic!("{label}: register {sql}: {e} (ops {ops:#?})"));
                ids.push(id);
            }
            Op::Force(i) => {
                store
                    .result(ids[*i])
                    .unwrap_or_else(|e| panic!("{label}: force {i}: {e} (ops {ops:#?})"));
            }
        }
    }
    store
        .flush()
        .unwrap_or_else(|e| panic!("{label}: final flush: {e} (ops {ops:#?})"));
    for (i, id) in ids.iter().enumerate() {
        let got = store
            .result(*id)
            .unwrap_or_else(|e| panic!("{label}: result {i}: {e} (ops {ops:#?})"));
        assert_eq!(
            got, serial_results[i],
            "{label}: statement {i} ({}) diverged (ops {ops:#?})",
            sqls[i]
        );
    }
    let fs = env.fault_stats();
    assert_eq!(
        fs.exhausted_batches, 0,
        "{label}: schedule was supposed to be absorbable: {fs:?}"
    );
    // Fingerprint over a quiet network so verification itself cannot
    // exhaust the retry budget.
    env.set_faults(None);
    assert_eq!(
        state_fingerprint(&env),
        state_fingerprint(&serial),
        "{label}: final state diverged (ops {ops:#?})"
    );
    fs
}

/// The capstone grid: chaos plans across deferral × fusion × shards.
/// Results and state must be byte-identical to the fault-free serial
/// reference, and the suite as a whole must actually absorb faults.
#[test]
fn chaotic_streams_match_fault_free_reference() {
    let mut absorbed = 0u64;
    for case in 0..12u64 {
        let mut rng = Rng::new(0xC4A0_5EED ^ case);
        let mut next_id = 500;
        let ops = arb_stream(&mut rng, &mut next_id);
        for deferral in [true, false] {
            for fusion in [true, false] {
                for shards in [1usize, 2, 4] {
                    let env = if shards == 1 {
                        fresh_env()
                    } else {
                        fresh_sharded(shards)
                    };
                    env.set_write_deferral(deferral);
                    env.set_fusion(fusion);
                    let label =
                        format!("case {case} deferral={deferral} fusion={fusion} shards={shards}");
                    let fs = check_chaos_stream(&ops, env, chaos_plan(0xFA17 ^ case), &label);
                    absorbed += fs.injected_drops + fs.injected_timeouts;
                }
            }
        }
    }
    assert!(
        absorbed > 100,
        "the suite absorbed only {absorbed} faults — chaos is not firing"
    );
}

/// Shard outage windows: the fleet degrades fused probes around the out
/// shard and replica reads fail over, but once the window closes every
/// stream converges on the reference.
#[test]
fn shard_outage_windows_recover_to_reference() {
    let mut absorbed = 0u64;
    for case in 0..10u64 {
        let mut rng = Rng::new(0x7A6E ^ case);
        let mut next_id = 600;
        let ops = arb_stream(&mut rng, &mut next_id);
        for shards in [2usize, 4] {
            let env = fresh_sharded(shards);
            let out = (case as usize) % shards;
            let from = case % 3;
            let plan = FaultPlan::seeded(0xD011 ^ case).outage(out, from, from + 2);
            let label = format!("case {case} shards={shards} outage shard {out}");
            absorbed += check_chaos_stream(&ops, env, plan, &label).outage_errors;
        }
    }
    assert!(absorbed > 0, "no outage window was ever hit");
}

/// Timeout-heavy write streams: every timed-out batch executed
/// server-side and must replay through the journal, never re-applying a
/// write. The journal must actually be exercised across the suite.
#[test]
fn timeout_storms_apply_writes_exactly_once() {
    let mut journal_hits = 0u64;
    let mut deduped = 0u64;
    for case in 0..10u64 {
        let mut rng = Rng::new(0x7131E0 ^ case);
        let mut next_id = 800;
        let ops = arb_stream(&mut rng, &mut next_id);
        let env = fresh_env();
        let plan = FaultPlan::seeded(0xBEEF ^ case).timeouts(250, 8);
        let fs = check_chaos_stream(&ops, env, plan, &format!("case {case}"));
        journal_hits += fs.journal_hits;
        deduped += fs.deduped_writes;
    }
    assert!(journal_hits > 0, "no batch ever replayed from the journal");
    assert!(deduped > 0, "no ambiguous write was ever deduplicated");
}

/// Exhaustion is not the end of the session: after the store degrades
/// to eager-solo dispatch, later statements still execute correctly.
#[test]
fn exhausted_session_degrades_then_keeps_serving() {
    let env = fresh_env();
    env.set_retry_policy(RetryPolicy {
        max_attempts: 2,
        ..Default::default()
    });
    env.set_faults(Some(FaultPlan::seeded(11).drops(1000)));
    let store = QueryStore::new(env.clone());
    let id = store
        .register("SELECT * FROM project WHERE id = 1".to_string())
        .unwrap();
    assert!(store.flush().is_err(), "a total blackout must exhaust");
    assert!(store.result(id).is_err());
    assert!(store.degraded(), "exhaustion trips the degradation ladder");

    // The network heals; the degraded session ships eagerly and serves
    // correct results without any further retry machinery.
    env.set_faults(None);
    let serial = fresh_env();
    for sql in [
        "UPDATE issue SET sev = 9 WHERE project_id = 3",
        "SELECT * FROM issue WHERE project_id = 3 ORDER BY id",
        "SELECT COUNT(*) FROM issue WHERE project_id = 3",
    ] {
        let id = store.register(sql.to_string()).unwrap();
        assert_eq!(
            store.result(id).unwrap(),
            serial.query(sql).unwrap(),
            "degraded result for {sql}"
        );
    }
    assert_eq!(state_fingerprint(&env), state_fingerprint(&serial));
}

/// Multi-session chaos through the shared dispatcher: sessions with
/// disjoint row ranges coalesce under a faulty network, and every write
/// still lands exactly once.
#[test]
fn dispatched_sessions_survive_chaos_with_exact_once_effects() {
    use std::sync::Barrier;
    let env = fresh_env();
    env.set_retry_policy(chaos_policy());
    env.set_faults(Some(
        FaultPlan::seeded(0x159A7C4).drops(100).timeouts(50, 8),
    ));
    let dispatcher = Arc::new(Dispatcher::with_window(
        env.clone(),
        std::time::Duration::from_millis(15),
    ));
    let n = 4usize;
    let rows_per = 10i64;
    let barrier = Arc::new(Barrier::new(n));
    let handles: Vec<_> = (0..n)
        .map(|t| {
            let d = Arc::clone(&dispatcher);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let base = t as i64 * rows_per;
                let mut rng = Rng::new(0xCA05 ^ t as u64);
                let serial = fresh_env();
                let mut stream = Vec::new();
                for _ in 0..12 {
                    let row = base + rng.range(0, rows_per);
                    if rng.range(0, 3) == 0 {
                        stream.push(format!("SELECT sev FROM issue WHERE id = {row}"));
                    } else {
                        stream.push(format!("UPDATE issue SET sev = sev + 1 WHERE id = {row}"));
                    }
                }
                let expected: Vec<_> = stream
                    .iter()
                    .map(|sql| serial.query(sql).unwrap())
                    .collect();

                barrier.wait();
                let store = QueryStore::dispatched(d);
                let ids: Vec<_> = stream
                    .iter()
                    .map(|sql| store.register(sql.clone()).unwrap())
                    .collect();
                store.flush().unwrap();
                for (i, id) in ids.iter().enumerate() {
                    assert_eq!(
                        store.result(*id).unwrap(),
                        expected[i],
                        "session {t} stmt {i} ({})",
                        stream[i]
                    );
                }
                serial
            })
        })
        .collect();
    let serials: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let fs = env.fault_stats();
    assert_eq!(
        fs.exhausted_batches, 0,
        "this schedule is absorbable: {fs:?}"
    );
    env.set_faults(None);
    for (t, serial) in serials.iter().enumerate() {
        let base = t as i64 * rows_per;
        for row in base..base + rows_per {
            let got = env
                .query(&format!("SELECT sev FROM issue WHERE id = {row}"))
                .unwrap();
            let want = serial
                .query(&format!("SELECT sev FROM issue WHERE id = {row}"))
                .unwrap();
            assert_eq!(got, want, "row {row} of session {t}");
        }
    }
}

/// The chaos grid with the shared result cache switched on: hit-served
/// positions, journal replays and retry storms may interleave freely,
/// but every statement's result and the final state must still match
/// the fault-free, cache-off serial reference.
#[test]
fn chaotic_cached_streams_match_fault_free_reference() {
    let mut absorbed = 0u64;
    let mut fills = 0u64;
    for case in 0..8u64 {
        let mut rng = Rng::new(0xCAC4E ^ case);
        let mut next_id = 700;
        let ops = arb_stream(&mut rng, &mut next_id);
        for shards in [1usize, 2, 4] {
            let env = if shards == 1 {
                fresh_env()
            } else {
                fresh_sharded(shards)
            };
            env.set_result_cache(true);
            let label = format!("case {case} cache=on shards={shards}");
            let fs = check_chaos_stream(&ops, env.clone(), chaos_plan(0x5EED ^ case), &label);
            absorbed += fs.injected_drops + fs.injected_timeouts;
            let cs = env.result_cache_stats();
            fills += cs.fills;
        }
    }
    assert!(absorbed > 0, "chaos never fired under the cache");
    assert!(fills > 0, "the cache never filled under chaos");
}

/// A write whose reply times out executes server-side and replays
/// through the at-most-once journal. The cache must see that write
/// **exactly once** — at the surface where the journal proves it ran —
/// never zero times (stale entry survives) and never twice.
#[test]
fn journaled_timeout_write_invalidates_exactly_once() {
    let env = fresh_env();
    env.set_result_cache(true);
    let read = "SELECT sev FROM issue WHERE id = 3";
    let before = env.query(read).unwrap();
    assert_eq!(env.result_cache_stats().fills, 1);

    // The trip sequence starts when the plan is installed: trip 0 is the
    // write's first attempt — inflated past the deadline, so the batch
    // executes but the reply is lost; the retry dedups via the journal.
    env.set_faults(Some(FaultPlan::seeded(2).timeout_at(0)));
    env.query("UPDATE issue SET sev = 9 WHERE id = 3").unwrap();
    let fs = env.fault_stats();
    assert_eq!(fs.injected_timeouts, 1);
    assert_eq!(fs.deduped_writes, 1, "the replay deduplicated");
    let cs = env.result_cache_stats();
    assert_eq!(
        cs.invalidations, 1,
        "the journal-proved write invalidated exactly once: {cs:?}"
    );
    assert_eq!(cs.precise_invalidations, 1, "both sides pin `id`");

    env.set_faults(None);
    let after = env.query(read).unwrap();
    assert_ne!(before, after, "the repeat read must not be served stale");
    assert_eq!(after.rows[0][0], Value::Int(9));
}

/// A degraded session (one that exhausted its retry budget on an
/// ambiguous batch) stops trusting the shared cache's hit path: its
/// reads always ship, though its writes still invalidate everyone
/// else's entries.
#[test]
fn degraded_session_serves_no_stale_hits() {
    let env = fresh_env();
    env.set_result_cache(true);
    let read = "SELECT sev FROM issue WHERE id = 5";

    // A healthy session fills the entry.
    let healthy = QueryStore::new(env.clone());
    let id = healthy.register(read.to_string()).unwrap();
    healthy.result(id).unwrap();
    assert!(env.result_cache_stats().fills >= 1);

    // A second session blacks out mid-write and degrades. The exhausted
    // batch carried a write on the cached row, so the conservative
    // invalidation already killed the entry.
    env.set_retry_policy(RetryPolicy {
        max_attempts: 2,
        ..Default::default()
    });
    env.set_faults(Some(FaultPlan::seeded(11).drops(1000)));
    let store = QueryStore::new(env.clone());
    store
        .register("UPDATE issue SET sev = 8 WHERE id = 5".to_string())
        .unwrap();
    assert!(store.flush().is_err(), "a total blackout must exhaust");
    assert!(store.degraded());
    assert!(
        env.result_cache_stats().invalidations >= 1,
        "ambiguous failure must invalidate conservatively"
    );

    // The network heals. The degraded session re-issues the write and
    // re-reads: it must observe its own write, and it must do so over
    // the wire — the hit counter may not move for a degraded session.
    env.set_faults(None);
    let w = store
        .register("UPDATE issue SET sev = 8 WHERE id = 5".to_string())
        .unwrap();
    store.result(w).unwrap();
    let hits_before = env.result_cache_stats().hits;
    let r = store.register(read.to_string()).unwrap();
    let got = store.result(r).unwrap();
    assert_eq!(got.rows[0][0], Value::Int(8));
    assert_eq!(
        env.result_cache_stats().hits,
        hits_before,
        "a degraded session must never be served from the cache"
    );

    // The healthy session's repeat read re-fetches fresh (its old entry
    // died with the degraded session's write).
    let id2 = healthy.register(read.to_string()).unwrap();
    assert_eq!(healthy.result(id2).unwrap().rows[0][0], Value::Int(8));
}

/// With faults disabled the whole stack must reproduce fault-free cost
/// accounting bit-for-bit — installing and clearing a plan leaves no
/// residue in any counter.
#[test]
fn cleared_faults_leave_no_accounting_residue() {
    let mut rng = Rng::new(0x0FF);
    let mut next_id = 950;
    let ops = arb_stream(&mut rng, &mut next_id);
    let run = |env: SimEnv| {
        let store = QueryStore::new(env.clone());
        let mut ids = Vec::new();
        for op in &ops {
            match op {
                Op::Stmt(sql) => ids.push(store.register(sql.clone()).unwrap()),
                Op::Force(i) => {
                    store.result(ids[*i]).unwrap();
                }
            }
        }
        store.flush().unwrap();
        env.stats()
    };
    let toggled = fresh_env();
    toggled.set_faults(Some(FaultPlan::seeded(7).drops(500)));
    toggled.set_faults(None);
    assert_eq!(run(toggled), run(fresh_env()));
}
