//! Smoke test wiring `examples/sharded.rs` into `cargo test`: the example
//! is compiled into this test crate and executed end to end, so the
//! documented tour can never silently rot.

#[path = "../examples/sharded.rs"]
mod sharded;

#[test]
fn sharded_example_runs_end_to_end() {
    let fleet = sharded::run();
    assert_eq!(fleet.n_shards(), 4);
    // The tour exercised all three routing modes plus a fused split.
    let s = fleet.shard_stats();
    assert!(s.point_reads >= 1, "point route exercised");
    assert!(s.scatter_reads >= 1, "scatter route exercised");
    assert!(s.fused_subprobes >= 2, "fused probe split exercised");
    // Every stock row landed on exactly one shard; items are replicated.
    assert_eq!(fleet.shard_row_counts("stock").iter().sum::<usize>(), 400);
    assert_eq!(fleet.shard_row_counts("item"), vec![100; 4]);
}
