//! Smoke tests wiring the remaining examples into `cargo test`, the way
//! `tests/sharded_example.rs` already covers `examples/sharded.rs`: each
//! example is compiled into this test crate and executed end to end, so
//! the documented tours can never silently rot.

#[path = "../examples/quickstart.rs"]
mod quickstart;

#[path = "../examples/issue_tracker.rs"]
mod issue_tracker;

#[path = "../examples/patient_dashboard.rs"]
mod patient_dashboard;

#[path = "../examples/kernel_language.rs"]
mod kernel_language;

#[test]
fn quickstart_example_runs_end_to_end() {
    let stats = quickstart::run();
    assert_eq!(stats.round_trips, 1, "both thunks ship in one batch");
    assert_eq!(stats.queries, 2);
}

#[test]
fn issue_tracker_example_runs_end_to_end() {
    let output = issue_tracker::run();
    assert!(!output.is_empty(), "the page rendered something");
    assert!(
        output.iter().any(|l| l.contains("user=")),
        "framework header present: {output:?}"
    );
}

#[test]
fn patient_dashboard_example_runs_end_to_end() {
    let (html, stats) = patient_dashboard::run();
    assert!(html.contains("Ada Lovelace"));
    assert!(html.contains("checkup"), "encounters rendered: {html}");
    assert_eq!(stats.round_trips, 2, "Fig. 2 batching");
    assert!(stats.queries >= 3);
}

#[test]
fn kernel_language_example_runs_end_to_end() {
    let rows = kernel_language::run();
    assert_eq!(rows.len(), 2);
    let (_, orig_out, orig_trips) = &rows[0];
    let (_, sloth_out, sloth_trips) = &rows[1];
    assert_eq!(orig_out, sloth_out, "semantics preserved");
    assert!(
        sloth_trips < orig_trips,
        "sloth batches the independent queries: {sloth_trips} vs {orig_trips}"
    );
}
