//! Cross-crate integration tests: the full stack from SQL engine to web
//! framework, plus every benchmark application end to end.

use std::sync::Arc;

use sloth_apps::{itracker_app, openmrs_app};
use sloth_core::QueryStore;
use sloth_lang::{prepare, run_source, ExecStrategy, OptFlags, V};
use sloth_net::{CostModel, SimEnv};
use sloth_orm::{entity, one_to_many, FetchStrategy, Schema, Session};
use sloth_sql::ast::ColumnType::*;
use sloth_web::{render, Model, ModelValue};

/// Every itracker page runs in both modes with identical output and a
/// strict round-trip win (the Fig. 5(b) invariant).
#[test]
fn itracker_all_pages_equivalent_and_batched() {
    let app = itracker_app();
    let db = app.fresh_env(CostModel::default()).snapshot_db();
    for page in &app.pages {
        let program = sloth_lang::parse_program(&page.source).unwrap();
        let orig = prepare(&program, ExecStrategy::Original);
        let sloth = prepare(&program, ExecStrategy::Sloth(OptFlags::all()));
        let env_o = SimEnv::from_database(db.clone(), CostModel::default());
        let env_s = SimEnv::from_database(db.clone(), CostModel::default());
        let o = orig
            .run(&env_o, Arc::clone(&app.schema), vec![V::Int(page.arg)])
            .unwrap();
        let s = sloth
            .run(&env_s, Arc::clone(&app.schema), vec![V::Int(page.arg)])
            .unwrap();
        assert_eq!(o.output, s.output, "{}", page.name);
        assert!(
            s.net.round_trips < o.net.round_trips,
            "{}: {} vs {}",
            page.name,
            s.net.round_trips,
            o.net.round_trips
        );
    }
}

/// Spot-check OpenMRS hot pages (running all 112 is the harness's job).
#[test]
fn openmrs_hot_pages_equivalent_and_batched() {
    let app = openmrs_app();
    let db = app.fresh_env(CostModel::default()).snapshot_db();
    for page in app.pages.iter().take(8) {
        let program = sloth_lang::parse_program(&page.source).unwrap();
        let orig = prepare(&program, ExecStrategy::Original);
        let sloth = prepare(&program, ExecStrategy::Sloth(OptFlags::all()));
        let env_o = SimEnv::from_database(db.clone(), CostModel::default());
        let env_s = SimEnv::from_database(db.clone(), CostModel::default());
        let o = orig
            .run(&env_o, Arc::clone(&app.schema), vec![V::Int(page.arg)])
            .unwrap();
        let s = sloth
            .run(&env_s, Arc::clone(&app.schema), vec![V::Int(page.arg)])
            .unwrap();
        assert_eq!(o.output, s.output, "{}", page.name);
        assert!(s.net.round_trips < o.net.round_trips, "{}", page.name);
    }
}

/// The encounterDisplay pattern end to end: batch size grows with the
/// observation count while round trips stay flat (Fig. 10(b) mechanism).
#[test]
fn encounter_display_batches_scale() {
    let app = openmrs_app();
    let page = app
        .pages
        .iter()
        .find(|p| p.name.contains("encounterDisplay"))
        .unwrap();
    let program = sloth_lang::parse_program(&page.source).unwrap();
    let sloth = prepare(&program, ExecStrategy::Sloth(OptFlags::all()));
    let mut batches = Vec::new();
    let mut trips = Vec::new();
    for obs in [20, 300] {
        let env = SimEnv::default_env();
        for ddl in app.schema.ddl() {
            env.seed_sql(&ddl).unwrap();
        }
        sloth_apps::openmrs::seed_openmrs(&env, obs);
        let r = sloth
            .run(&env, Arc::clone(&app.schema), vec![V::Int(page.arg)])
            .unwrap();
        batches.push(r.store.unwrap().max_batch());
        trips.push(r.net.round_trips);
    }
    assert!(batches[1] > batches[0], "batch grows: {batches:?}");
    assert!(trips[1] <= trips[0] + 2, "round trips stay flat: {trips:?}");
}

/// Rust-level stack: ORM deferred session + web rendering over the thunk
/// runtime, mirroring the kernel-language path.
#[test]
fn rust_level_stack_batches_through_view() {
    let mut schema = Schema::new();
    schema.add(entity(
        "author",
        "author",
        "id",
        &[("id", Int), ("name", Text)],
        vec![one_to_many(
            "books",
            "book",
            "author_id",
            FetchStrategy::Lazy,
        )],
    ));
    schema.add(entity(
        "book",
        "book",
        "id",
        &[("id", Int), ("author_id", Int), ("title", Text)],
        vec![],
    ));
    let schema = Arc::new(schema);
    let env = SimEnv::default_env();
    for ddl in schema.ddl() {
        env.seed_sql(&ddl).unwrap();
    }
    env.seed_sql("INSERT INTO author VALUES (1, 'Hopper'), (2, 'Liskov')")
        .unwrap();
    env.seed_sql("INSERT INTO book VALUES (10, 1, 'COBOL'), (11, 2, 'CLU')")
        .unwrap();

    let store = QueryStore::new(env.clone());
    let session = Session::deferred(store, Arc::clone(&schema));
    let mut model = Model::new();
    let a1 = session.find_thunk("author", 1).unwrap();
    let a2 = session.find_thunk("author", 2).unwrap();
    model.put("first", ModelValue::LazyEntity(a1));
    model.put("second", ModelValue::LazyEntity(a2));
    assert_eq!(env.stats().round_trips, 0);
    let html = render(&model);
    assert!(html.contains("Hopper") && html.contains("Liskov"));
    assert_eq!(env.stats().round_trips, 1, "both authors in one batch");
}

/// Kernel-language writes land identically from both evaluators and
/// transaction boundaries flush (the §3.3 guarantee, end to end).
#[test]
fn writes_committed_identically() {
    let src = r#"
        fn main() {
            let before = cell(query("SELECT v FROM counter WHERE id = 1"), 0, "v");
            exec("UPDATE counter SET v = v + 5 WHERE id = 1");
            commit();
            let after = cell(query("SELECT v FROM counter WHERE id = 1"), 0, "v");
            print(str(before) + "->" + str(after));
        }
    "#;
    let schema = Arc::new(Schema::new());
    let mk = || {
        let env = SimEnv::default_env();
        env.seed_sql("CREATE TABLE counter (id INT PRIMARY KEY, v INT)")
            .unwrap();
        env.seed_sql("INSERT INTO counter VALUES (1, 10)").unwrap();
        env
    };
    let env_o = mk();
    let o = run_source(
        src,
        &env_o,
        Arc::clone(&schema),
        ExecStrategy::Original,
        vec![],
    )
    .unwrap();
    let env_s = mk();
    let s = run_source(
        src,
        &env_s,
        Arc::clone(&schema),
        ExecStrategy::Sloth(OptFlags::all()),
        vec![],
    )
    .unwrap();
    assert_eq!(o.output, vec!["10->15"]);
    assert_eq!(o.output, s.output);
    let final_o = env_o.seed(|db| db.execute("SELECT v FROM counter WHERE id = 1").unwrap());
    let final_s = env_s.seed(|db| db.execute("SELECT v FROM counter WHERE id = 1").unwrap());
    assert_eq!(final_o.result.rows, final_s.result.rows);
}

/// The Fig. 11 analysis on the real apps: the majority of methods touch
/// persistent data (paper: 72–83 %).
#[test]
fn persistence_majority() {
    for app in [itracker_app(), openmrs_app()] {
        let page = &app.pages[0];
        let program = sloth_lang::parse_program(&page.source).unwrap();
        let analysis = sloth_lang::analyze(&program);
        let total = program.functions.len();
        let persistent = program
            .functions
            .iter()
            .filter(|f| analysis.is_persistent(&f.name))
            .count();
        let pct = persistent as f64 / total as f64;
        assert!(
            (0.5..1.0).contains(&pct),
            "{}: {persistent}/{total} persistent",
            app.name
        );
    }
}
