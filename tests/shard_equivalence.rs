//! Sharded equivalence, property-tested at the batch-driver level: for
//! random batches of mixed reads and writes, a [`ShardedEnv`] with
//! N ∈ {1, 2, 4} shards must produce per-query result sets identical to
//! the single-server [`SimEnv`] — same rows, same row order, same first
//! error, same final database state — with fusion on and off.
//!
//! The statement generator is biased towards the router's interesting
//! shapes: shard-key point lookups (single-shard route), shard-key `IN`
//! lists (subset route / fused sub-probe splits), full scans and
//! `ORDER BY`/`LIMIT` (scatter + order-preserving merge), decomposable
//! and distinct aggregates (re-aggregation), replicated-table traffic,
//! and writes that route, broadcast, or split per tuple.
//!
//! Deterministic SplitMix64 cases (no third-party crates available);
//! failures print the generating batch.

use sloth_net::{CostModel, ShardedEnv, SimEnv};
use sloth_sql::{ShardSpec, Value};

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9E3779B97F4A7C15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % (hi - lo) as u64) as i64
    }
}

/// `issue` is sharded by `project_id` (a non-PK key, so PK lookups
/// scatter and key lookups route); `project` is replicated.
fn spec() -> ShardSpec {
    ShardSpec::new().shard("issue", "project_id")
}

fn seed(env: &SimEnv) {
    env.seed_sql("CREATE TABLE project (id INT PRIMARY KEY, name TEXT)")
        .unwrap();
    env.seed_sql("CREATE TABLE issue (id INT PRIMARY KEY, project_id INT, title TEXT, sev INT)")
        .unwrap();
    env.seed_sql("CREATE INDEX ON issue (project_id)").unwrap();
    for p in 0..8 {
        env.seed_sql(&format!("INSERT INTO project VALUES ({p}, 'proj{p}')"))
            .unwrap();
    }
    for i in 0..40 {
        env.seed_sql(&format!(
            "INSERT INTO issue VALUES ({i}, {}, 'bug{}', {})",
            i % 8,
            i % 5,
            i % 4
        ))
        .unwrap();
    }
}

fn single() -> SimEnv {
    let env = SimEnv::default_env();
    seed(&env);
    env
}

fn fleet(n: usize) -> ShardedEnv {
    let env = ShardedEnv::new(CostModel::default(), spec(), n);
    seed(&env.handle());
    env
}

/// A random batch statement, biased towards the shapes the router has to
/// get right.
fn arb_statement(rng: &mut Rng, next_insert_id: &mut i64) -> String {
    match rng.range(0, 18) {
        // Shard-key point lookups — single-shard routes and, repeated in
        // one batch, fused sub-probe splits.
        0..=3 => format!(
            "SELECT * FROM issue WHERE project_id = {} ORDER BY id",
            rng.range(0, 10)
        ),
        // PK lookups on the sharded table: the key is NOT the shard key,
        // so these scatter (and may fuse into a scattered probe).
        4 | 5 => format!("SELECT title FROM issue WHERE id = {}", rng.range(0, 45)),
        // Replicated-table lookups.
        6 => format!("SELECT * FROM project WHERE id = {}", rng.range(0, 10)),
        // Shard-key IN lists: subset routes.
        7 => format!(
            "SELECT id, title FROM issue WHERE project_id IN ({}, {}, {}) ORDER BY sev DESC, id",
            rng.range(0, 10),
            rng.range(0, 10),
            rng.range(0, 10)
        ),
        // Scatter + order-preserving merge, with and without LIMIT.
        8 => "SELECT * FROM issue ORDER BY title, id".to_string(),
        9 => format!(
            "SELECT id FROM issue WHERE sev >= {} ORDER BY id DESC LIMIT 6",
            rng.range(0, 4)
        ),
        10 => format!("SELECT * FROM issue WHERE sev = {}", rng.range(0, 5)),
        // Re-aggregation paths.
        11 => format!(
            "SELECT COUNT(*) FROM issue WHERE sev >= {}",
            rng.range(0, 4)
        ),
        12 => "SELECT SUM(sev) FROM issue".to_string(),
        13 => "SELECT MAX(id) FROM issue".to_string(),
        14 => "SELECT COUNT(DISTINCT title) FROM issue".to_string(),
        // Writes: routed (key-pinned), broadcast (unpinned), replicated.
        15 => format!(
            "UPDATE issue SET sev = {} WHERE project_id = {}",
            rng.range(0, 9),
            rng.range(0, 8)
        ),
        16 => format!(
            "UPDATE issue SET sev = sev + 1 WHERE id < {}",
            rng.range(0, 45)
        ),
        // Inserts split per tuple across shards.
        _ => {
            let id = *next_insert_id;
            *next_insert_id += 2;
            format!(
                "INSERT INTO issue VALUES ({id}, {}, 'new{id}', {}), ({}, {}, 'new{}', {})",
                rng.range(0, 10),
                rng.range(0, 4),
                id + 1,
                rng.range(0, 10),
                id + 1,
                rng.range(0, 4)
            )
        }
    }
}

/// Final database state, read through each backend's own driver (which
/// also exercises the scatter merge one last time).
fn db_state(
    query: &dyn Fn(&str) -> Result<sloth_sql::ResultSet, sloth_sql::SqlError>,
) -> Vec<Vec<Value>> {
    let mut state = query("SELECT id, project_id, title, sev FROM issue ORDER BY id")
        .unwrap()
        .rows;
    state.extend(
        query("SELECT id, name FROM project ORDER BY id")
            .unwrap()
            .rows,
    );
    state
}

#[test]
fn random_batches_sharded_equals_single() {
    for case in 0..120u64 {
        for &n in &[1usize, 2, 4] {
            for fusion in [true, false] {
                let mut rng = Rng::new(0x5AADD ^ (case << 3) ^ n as u64);
                let mut next_id = 100;
                let len = rng.range(1, 22);
                let batch: Vec<String> = (0..len)
                    .map(|_| arb_statement(&mut rng, &mut next_id))
                    .collect();

                let reference = single();
                let sharded = fleet(n);
                reference.set_fusion(fusion);
                sharded.set_fusion(fusion);

                let r_ref = reference.query_batch(&batch);
                let r_sh = sharded.query_batch(&batch);
                match (r_ref, r_sh) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a.len(), b.len());
                        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                            assert_eq!(
                                x, y,
                                "statement {i} at {n} shards (fusion {fusion}): {batch:#?}"
                            );
                        }
                        assert_eq!(
                            db_state(&|sql| reference.query(sql)),
                            db_state(&|sql| sharded.query(sql)),
                            "final state at {n} shards (fusion {fusion}): {batch:#?}"
                        );
                        assert_eq!(
                            reference.stats().round_trips,
                            sharded.stats().round_trips,
                            "sharding must not change round-trip count"
                        );
                    }
                    (Err(a), Err(b)) => {
                        assert_eq!(
                            a, b,
                            "first error at {n} shards (fusion {fusion}): {batch:#?}"
                        )
                    }
                    (a, b) => {
                        panic!("one backend failed: single={a:?} sharded={b:?} batch {batch:#?}")
                    }
                }
            }
        }
    }
}

/// Write-heavy batches (≥ 30 % writes, overlapping and disjoint tables
/// and keys) under the **write-aware segment planner**: a sharded fleet
/// must still match the single server statement for statement — results,
/// row order, final state, first error — with fusion on and off. This is
/// the sharded half of the write-mix acceptance gate: fused groups may
/// now cross disjoint-footprint writes, and the router must agree with
/// the single server about what every statement sees.
#[test]
fn write_heavy_batches_sharded_equals_single() {
    for case in 0..80u64 {
        for &n in &[2usize, 4] {
            for fusion in [true, false] {
                let mut rng = Rng::new(0x3217E817 ^ (case << 4) ^ n as u64);
                let mut next_id = 300;
                let len = rng.range(3, 20);
                let batch: Vec<String> = (0..len)
                    .map(|_| {
                        if rng.range(0, 10) < 4 {
                            arb_write_statement(&mut rng, &mut next_id)
                        } else {
                            arb_statement(&mut rng, &mut next_id)
                        }
                    })
                    .collect();

                let reference = single();
                let sharded = fleet(n);
                reference.set_fusion(fusion);
                sharded.set_fusion(fusion);

                let r_ref = reference.query_batch(&batch);
                let r_sh = sharded.query_batch(&batch);
                match (r_ref, r_sh) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(
                            a, b,
                            "write-mix at {n} shards (fusion {fusion}): {batch:#?}"
                        );
                        assert_eq!(
                            db_state(&|sql| reference.query(sql)),
                            db_state(&|sql| sharded.query(sql)),
                            "write-mix final state at {n} shards (fusion {fusion}): {batch:#?}"
                        );
                    }
                    (Err(a), Err(b)) => assert_eq!(
                        a, b,
                        "write-mix first error at {n} shards (fusion {fusion}): {batch:#?}"
                    ),
                    (a, b) => {
                        panic!("one backend failed: single={a:?} sharded={b:?} batch {batch:#?}")
                    }
                }
            }
        }
    }
}

/// Write-biased statements for the write-mix suite: routed and broadcast
/// updates, deletes, and inserts that overlap the read templates'
/// key ranges (same `project_id` space) or miss them entirely.
fn arb_write_statement(rng: &mut Rng, next_insert_id: &mut i64) -> String {
    match rng.range(0, 6) {
        0 | 1 => format!(
            "UPDATE issue SET sev = {} WHERE project_id = {}",
            rng.range(0, 9),
            rng.range(0, 10)
        ),
        2 => format!(
            "UPDATE issue SET title = 'wt{}' WHERE id = {}",
            rng.range(0, 6),
            rng.range(0, 45)
        ),
        3 => format!("DELETE FROM issue WHERE id = {}", rng.range(30, 48)),
        4 => format!(
            "UPDATE project SET name = 'wp{}' WHERE id = {}",
            rng.range(0, 5),
            rng.range(0, 10)
        ),
        _ => {
            let id = *next_insert_id;
            *next_insert_id += 1;
            format!(
                "INSERT INTO issue (id, project_id, title, sev) VALUES ({id}, {}, 'wm{id}', {})",
                rng.range(0, 10),
                rng.range(0, 4)
            )
        }
    }
}

/// The hot ORM pattern at fleet scale: same-template point lookups on the
/// shard key must split into sub-probes and cut database time vs one
/// server, at identical results and round trips.
#[test]
fn fused_subprobe_split_saves_db_time() {
    let mut rng = Rng::new(7);
    let batch: Vec<String> = (0..32)
        .map(|_| {
            format!(
                "SELECT * FROM issue WHERE project_id = {} ORDER BY id",
                rng.range(0, 8)
            )
        })
        .collect();
    let one = fleet(1);
    let four = fleet(4);
    let a = one.query_batch(&batch).unwrap();
    let b = four.query_batch(&batch).unwrap();
    assert_eq!(a, b);
    assert_eq!(one.stats().round_trips, four.stats().round_trips);
    assert_eq!(four.stats().fused_queries, 32);
    assert!(
        four.shard_stats().fused_subprobes > 1,
        "probe split across shards"
    );
    assert!(
        four.stats().db_ns < one.stats().db_ns,
        "4 shards {} ≥ 1 shard {}",
        four.stats().db_ns,
        one.stats().db_ns
    );
}
