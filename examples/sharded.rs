//! Sharded backend tour: TPC-C warehouses across a 4-shard fleet.
//!
//! ```sh
//! cargo run --example sharded
//! ```
//!
//! Builds a [`ShardedEnv`] partitioned by the TPC-C shard spec, seeds
//! four warehouses (DDL broadcasts, rows land on their owning shards),
//! then shows the three routing modes in action:
//!
//! 1. a point lookup riding the single-shard fast path,
//! 2. a batch of same-template lookups fusing into an `IN` probe that
//!    splits into per-shard sub-probes,
//! 3. a scattered aggregate re-aggregated at the router —
//!
//! and finishes by running a TPC-C transaction through the full Sloth
//! lazy pipeline on the fleet, unchanged.
//!
//! The `sharded_example` integration test executes [`run`] on every
//! `cargo test`, so this example can never rot.

use sloth::apps::tpcc::{seed_tpcc, tpcc_schema, tpcc_shard_spec};
use sloth::lang::{run_source, ExecStrategy, OptFlags, V};
use sloth::net::{CostModel, ShardedEnv};

/// The whole tour; returns the fleet so the smoke test can assert on it.
pub fn run() -> ShardedEnv {
    let fleet = ShardedEnv::new(CostModel::default(), tpcc_shard_spec(), 4);
    seed_tpcc(&fleet.handle(), 4);
    println!(
        "fleet: {} shards, spec {:?}",
        fleet.n_shards(),
        fleet.spec().entries()
    );
    println!(
        "stock rows per shard: {:?}",
        fleet.shard_row_counts("stock")
    );
    println!(
        "item rows per shard:  {:?} (replicated)",
        fleet.shard_row_counts("item")
    );

    // 1. Point lookup: `s_id` is stock's shard key, so this touches ONE
    // shard — no scatter, no merge.
    let rs = fleet
        .query("SELECT quantity FROM stock WHERE s_id = 17")
        .unwrap();
    println!(
        "\npoint lookup s_id=17 -> quantity {} ({} point reads so far)",
        rs.get(0, "quantity").unwrap(),
        fleet.shard_stats().point_reads
    );

    // 2. A dashboard-style batch: 40 same-template lookups fuse into one
    // IN probe, which the router splits into per-shard sub-probes.
    let batch: Vec<String> = (1..=40)
        .map(|i| format!("SELECT * FROM stock WHERE s_id = {i}"))
        .collect();
    let results = fleet.query_batch(&batch).unwrap();
    let stats = fleet.stats();
    let shard_stats = fleet.shard_stats();
    println!(
        "\nbatch of {} lookups: {} fused group(s), {} per-shard sub-probes, \
         {} round trip(s) total so far, all {} results delivered",
        batch.len(),
        stats.fused_groups,
        shard_stats.fused_subprobes,
        stats.round_trips,
        results.len()
    );

    // 3. A scattered aggregate: every shard counts its own rows, the
    // router sums the partials.
    let low = fleet
        .query("SELECT COUNT(*) FROM stock WHERE quantity < 25")
        .unwrap();
    println!(
        "\nscattered COUNT(*): {} low-stock rows ({} scatter reads so far)",
        low.get(0, "count").unwrap(),
        fleet.shard_stats().scatter_reads
    );

    // 4. The full Sloth pipeline — lazy evaluation, query store, batch
    // driver — runs on the fleet unchanged: the fleet handle IS a SimEnv.
    let src = r#"
        fn main(arg) {
            let c = query("SELECT name, balance FROM customer WHERE c_id = " + str(arg));
            print(cell(c, 0, "name"));
            let st = query("SELECT quantity FROM stock WHERE s_id = " + str(arg));
            print(str(cell(st, 0, "quantity")));
        }
    "#;
    let r = run_source(
        src,
        &fleet.handle(),
        tpcc_schema(),
        ExecStrategy::Sloth(OptFlags::all()),
        vec![V::Int(7)],
    )
    .expect("sharded page runs");
    println!(
        "\nSloth page on the fleet: output {:?}, {} round trip(s), {:.3} ms simulated",
        r.output,
        r.net.round_trips,
        r.net.total_ns() as f64 / 1e6
    );
    fleet
}

// Unused when the file is included by the `sharded_example` smoke test.
#[allow(dead_code)]
fn main() {
    run();
}
