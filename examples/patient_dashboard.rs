//! The paper's Fig. 1/Fig. 2 walk-through: the OpenMRS patient dashboard,
//! written against the Rust-level API (`sloth-orm` deferred session +
//! `sloth-web` thunk-buffering view).
//!
//! Watch the batches: fetching the patient is batch 1 (its id is needed to
//! build the other queries); encounters, visits and active visits all ride
//! batch 2, shipped only when the view renders.
//!
//! ```sh
//! cargo run --example patient_dashboard
//! ```

use std::sync::Arc;

use sloth_core::QueryStore;
use sloth_net::SimEnv;
use sloth_orm::{entity, one_to_many, FetchStrategy, Schema, Session};
use sloth_sql::ast::ColumnType::*;
use sloth_web::{render, Model, ModelValue};

fn schema() -> Arc<Schema> {
    let mut s = Schema::new();
    s.add(entity(
        "patient",
        "patient",
        "patient_id",
        &[("patient_id", Int), ("name", Text)],
        vec![
            one_to_many("encounters", "encounter", "patient_id", FetchStrategy::Lazy),
            one_to_many("visits", "visit", "patient_id", FetchStrategy::Lazy),
        ],
    ));
    s.add(entity(
        "encounter",
        "encounter",
        "encounter_id",
        &[("encounter_id", Int), ("patient_id", Int), ("kind", Text)],
        vec![],
    ));
    s.add(entity(
        "visit",
        "visit",
        "visit_id",
        &[("visit_id", Int), ("patient_id", Int), ("active", Bool)],
        vec![],
    ));
    Arc::new(s)
}

/// Renders the dashboard and returns `(page, stats)` (wired into
/// `cargo test` by `tests/examples_smoke.rs`).
pub fn run() -> (String, sloth_net::NetStats) {
    let schema = schema();
    let env = SimEnv::default_env();
    for ddl in schema.ddl() {
        env.seed_sql(&ddl).unwrap();
    }
    env.seed_sql("INSERT INTO patient VALUES (1, 'Ada Lovelace')")
        .unwrap();
    env.seed_sql(
        "INSERT INTO encounter VALUES (10, 1, 'checkup'), (11, 1, 'lab'), (12, 1, 'x-ray')",
    )
    .unwrap();
    env.seed_sql("INSERT INTO visit VALUES (100, 1, TRUE), (101, 1, FALSE)")
        .unwrap();

    // ---- the controller (paper Fig. 1) ----
    let store = QueryStore::new(env.clone());
    let session = Session::deferred(store.clone(), Arc::clone(&schema));
    let mut model = Model::new();

    // Q1: the patient. Registered, not executed.
    let patient = session.find_thunk("patient", 1).unwrap();
    println!(
        "after find_thunk:        round trips = {}",
        env.stats().round_trips
    );

    // Building Q2..Q4 needs the patient's key → forces Q1 (batch 1 ships).
    let p = patient.force().expect("patient exists");
    println!(
        "after forcing patient:   round trips = {}",
        env.stats().round_trips
    );

    let encounters = session.assoc_thunk(&p, "encounters").unwrap();
    let visits = session.assoc_thunk(&p, "visits").unwrap();
    println!(
        "after assoc thunks:      round trips = {} (batch 2 pending: {} queries)",
        env.stats().round_trips,
        store.pending_len()
    );

    model.put("patient", ModelValue::Entity(p));
    model.put("patientEncounters", ModelValue::LazyList(encounters));
    model.put("patientVisits", ModelValue::LazyList(visits));

    // ---- the view ----
    // Rendering flushes the thunk writer: batch 2 ships in ONE round trip.
    let html = render(&model);
    println!(
        "after rendering:         round trips = {}",
        env.stats().round_trips
    );
    println!("--- page ---\n{html}---");

    let stats = env.stats();
    println!(
        "total: {} round trips for {} queries (max batch {}), {:.2} ms simulated",
        stats.round_trips,
        stats.queries,
        stats.max_batch,
        stats.total_ns() as f64 / 1e6
    );
    assert_eq!(
        stats.round_trips, 2,
        "Fig. 2: batch 1 (patient) + batch 2 (the rest)"
    );
    (html, stats)
}

// Unused when the file is included by the examples_smoke test.
#[allow(dead_code)]
fn main() {
    run();
}
