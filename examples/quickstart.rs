//! Quickstart: the Sloth runtime in twenty lines.
//!
//! Two queries are *registered* when their thunks are created and shipped
//! to the database in **one round trip** when the first result is needed.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use sloth_core::{query_thunk, QueryStore};
use sloth_net::{NetStats, SimEnv};

/// Runs the tour and returns the deployment statistics (wired into
/// `cargo test` by `tests/examples_smoke.rs`).
pub fn run() -> NetStats {
    // A simulated deployment: app server + DB, 0.5 ms apart.
    let env = SimEnv::default_env();
    env.seed_sql("CREATE TABLE greeting (id INT PRIMARY KEY, word TEXT)")
        .unwrap();
    env.seed_sql("INSERT INTO greeting VALUES (1, 'hello'), (2, 'world')")
        .unwrap();

    // The per-request query store batches lazily-issued queries.
    let store = QueryStore::new(env.clone());

    let hello = query_thunk(&store, "SELECT word FROM greeting WHERE id = 1", |rs| {
        rs.get(0, "word").unwrap().to_string()
    });
    let world = query_thunk(&store, "SELECT word FROM greeting WHERE id = 2", |rs| {
        rs.get(0, "word").unwrap().to_string()
    });
    println!(
        "registered {} queries, round trips so far: {}",
        2,
        env.stats().round_trips
    );
    assert_eq!(env.stats().round_trips, 0);

    // Forcing either thunk ships BOTH queries in a single batch.
    println!("{} {}", hello.force(), world.force());
    let stats = env.stats();
    println!(
        "round trips: {} (batch of {}), simulated latency: {:.2} ms",
        stats.round_trips,
        stats.queries,
        stats.total_ns() as f64 / 1e6
    );
    assert_eq!(stats.round_trips, 1);
    stats
}

// Unused when the file is included by the examples_smoke test.
#[allow(dead_code)]
fn main() {
    run();
}
