//! Write your own kernel-language program and watch the Sloth compiler
//! transform it: this example shows the compilation pipeline stages
//! (simplify → analyze → optimize) and the batching the lazy evaluator
//! achieves over the same source.
//!
//! ```sh
//! cargo run --example kernel_language
//! ```

use std::sync::Arc;

use sloth_lang::{analyze, parse_program, prepare, simplify_program, ExecStrategy, OptFlags, V};
use sloth_net::SimEnv;
use sloth_orm::Schema;

const SRC: &str = r#"
fn fetch_total(lo, hi) {
    let a = query("SELECT SUM(v) FROM numbers WHERE v >= " + str(lo));
    let b = query("SELECT SUM(v) FROM numbers WHERE v < " + str(hi));
    return cell(a, 0, "sum") + cell(b, 0, "sum");
}

fn label_for(total) {
    if (total > 100) { return "big"; }
    return "small";
}

fn main(n) {
    let total = fetch_total(n, n * 2);
    let tag = label_for(total);
    print(concat("total=", str(total), " tag=", tag));
}
"#;

/// Walks the compilation pipeline and returns per-strategy
/// `(label, output, round_trips)` rows (wired into `cargo test` by
/// `tests/examples_smoke.rs`).
pub fn run() -> Vec<(&'static str, Vec<String>, u64)> {
    let program = parse_program(SRC).unwrap();
    println!("source functions: {}", program.functions.len());

    // Stage 1: simplification (§3.1) — three-address form, canonical loops.
    let simplified = simplify_program(&program);
    println!(
        "statements before/after simplification: {} → {}",
        program.stmt_count(),
        simplified.stmt_count()
    );

    // Stage 2: analysis (§4.1) — persistence and purity labels.
    let analysis = analyze(&simplified);
    for f in &simplified.functions {
        println!(
            "  fn {:<12} persistent={:<5} pure={}",
            f.name,
            analysis.is_persistent(&f.name),
            analysis.is_pure_fn(&f.name)
        );
    }

    // Stage 3: run under both strategies.
    let env = SimEnv::default_env();
    env.seed_sql("CREATE TABLE numbers (id INT PRIMARY KEY, v INT)")
        .unwrap();
    for i in 0..50 {
        env.seed_sql(&format!("INSERT INTO numbers VALUES ({i}, {})", i * 3))
            .unwrap();
    }
    let db = env.snapshot_db();
    let schema = Arc::new(Schema::new());

    let mut rows = Vec::new();
    for (label, strategy) in [
        ("original", ExecStrategy::Original),
        ("sloth", ExecStrategy::Sloth(OptFlags::all())),
    ] {
        let prepared = prepare(&program, strategy);
        let env = SimEnv::from_database(db.clone(), sloth_net::CostModel::default());
        let r = prepared
            .run(&env, Arc::clone(&schema), vec![V::Int(10)])
            .unwrap();
        println!(
            "{label:<9} output={:?}  round_trips={}  thunks={}",
            r.output, r.net.round_trips, r.counters.thunk_allocs
        );
        rows.push((label, r.output, r.net.round_trips));
    }
    // Both SUM queries are independent: Sloth ships them together.
    rows
}

// Unused when the file is included by the examples_smoke test.
#[allow(dead_code)]
fn main() {
    run();
}
