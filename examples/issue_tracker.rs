//! Runs a real benchmark page — the itracker issue list — through the
//! whole stack: kernel-language source, the Sloth compiler pipeline, both
//! evaluation strategies, and the simulated deployment. Prints the
//! original-vs-Sloth comparison the paper's appendix tabulates.
//!
//! ```sh
//! cargo run --release --example issue_tracker
//! ```

use std::sync::Arc;

use sloth_apps::itracker_app;
use sloth_lang::{prepare, ExecStrategy, OptFlags, V};
use sloth_net::{CostModel, SimEnv};

/// Runs the page in both modes and returns the (identical) rendered
/// output (wired into `cargo test` by `tests/examples_smoke.rs`).
pub fn run() -> Vec<String> {
    let app = itracker_app();
    let page = app
        .pages
        .iter()
        .find(|p| p.name.contains("view_issue.jsp"))
        .expect("page exists");
    println!("benchmark: {}\n", page.name);

    let program = sloth_lang::parse_program(&page.source).expect("page parses");
    let db = app.fresh_env(CostModel::default()).snapshot_db();

    let mut outputs = Vec::new();
    for (label, strategy) in [
        ("original", ExecStrategy::Original),
        ("sloth    ", ExecStrategy::Sloth(OptFlags::all())),
    ] {
        let prepared = prepare(&program, strategy);
        let env = SimEnv::from_database(db.clone(), CostModel::default());
        let result = prepared
            .run(&env, Arc::clone(&app.schema), vec![V::Int(page.arg)])
            .expect("page runs");
        println!(
            "{label}  {:>8.1} ms   {:>4} round trips   {:>4} queries   max batch {:>3}",
            result.total_ms(),
            result.net.round_trips,
            result.net.queries,
            result.store.as_ref().map(|s| s.max_batch()).unwrap_or(1),
        );
        outputs.push(result.output);
    }
    assert_eq!(outputs[0], outputs[1], "semantics preserved");

    println!("\nrendered page (identical in both modes):");
    for line in outputs[0].iter().take(8) {
        println!("  {line}");
    }
    println!("  … ({} lines total)", outputs[0].len());
    outputs.pop().expect("two runs happened")
}

// Unused when the file is included by the examples_smoke test.
#[allow(dead_code)]
fn main() {
    run();
}
